#include <algorithm>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "gen/error_model.h"
#include "gen/generator.h"
#include "gen/names_data.h"
#include "gen/places_data.h"
#include "util/string_util.h"

namespace mergepurge {
namespace {

// --- Embedded corpora. ---

TEST(NamesDataTest, SurnameCorpusIsLargeAndDistinct) {
  EXPECT_GE(NumSurnames(), 63000u);
  std::set<std::string> sample;
  for (size_t i = 0; i < 5000; ++i) sample.insert(SurnameAt(i));
  // The composed corpus should be essentially collision-free.
  EXPECT_GT(sample.size(), 4950u);
}

TEST(NamesDataTest, NamesAreNonEmptyUpperCase) {
  for (size_t i = 0; i < NumFirstNames(); ++i) {
    std::string name = FirstNameAt(i);
    ASSERT_FALSE(name.empty());
    EXPECT_EQ(name, ToUpperAscii(name));
  }
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(SurnameAt(i * 61).empty());
  }
}

TEST(PlacesDataTest, CorpusSizeMatchesPaperScale) {
  // The paper's city corpus had 18,670 names; ours is the same order.
  EXPECT_GE(NumPlaces(), 15000u);
  EXPECT_LE(NumPlaces(), 25000u);
}

TEST(PlacesDataTest, PlacesAreConsistent) {
  for (size_t i = 0; i < 500; ++i) {
    Place p = PlaceAt(i * 37);
    EXPECT_FALSE(p.city.empty());
    EXPECT_EQ(p.state.size(), 2u);
    EXPECT_GE(p.zip_base, 0);
    EXPECT_LT(p.zip_base, 100000);
  }
}

TEST(PlacesDataTest, SameIndexSamePlace) {
  Place a = PlaceAt(1234);
  Place b = PlaceAt(1234);
  EXPECT_EQ(a.city, b.city);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.zip_base, b.zip_base);
}

TEST(PlacesDataTest, AllCityNamesMatchesNumPlaces) {
  EXPECT_EQ(AllCityNames().size(), NumPlaces());
}

// --- Error model. ---

TEST(ErrorModelTest, TypoCountDistribution) {
  ErrorModel model;
  Rng rng(5);
  int singles = 0, total = 0;
  for (int i = 0; i < 5000; ++i) {
    int count = model.SampleTypoCount(1.0, &rng);
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 6);
    if (count == 1) ++singles;
    ++total;
  }
  // ~80% single errors at severity 1.0 (Kukich '92).
  double single_rate = static_cast<double>(singles) / total;
  EXPECT_NEAR(single_rate, 0.80, 0.05);
}

TEST(ErrorModelTest, HigherSeverityMoreErrors) {
  ErrorModel model;
  Rng rng_low(5), rng_high(5);
  double low_sum = 0, high_sum = 0;
  for (int i = 0; i < 3000; ++i) {
    low_sum += model.SampleTypoCount(0.5, &rng_low);
    high_sum += model.SampleTypoCount(2.5, &rng_high);
  }
  EXPECT_LT(low_sum, high_sum);
}

TEST(ErrorModelTest, InjectOneTypoAlwaysChangesString) {
  ErrorModel model;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    std::string out = model.InjectOneTypo("JOHNSON", &rng);
    EXPECT_NE(out, "JOHNSON");
  }
}

TEST(ErrorModelTest, DigitsStayDigits) {
  ErrorModel model;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    std::string out = model.InjectTypos("123456789", 2, &rng);
    for (char c : out) {
      EXPECT_TRUE(c >= '0' && c <= '9') << out;
    }
  }
}

TEST(ErrorModelTest, EmptyStringGetsInsertion) {
  ErrorModel model;
  Rng rng(17);
  std::string out = model.InjectOneTypo("", &rng);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ErrorModelTest, TransposeDigitsSwapsAdjacent) {
  ErrorModel model;
  Rng rng(19);
  std::string out = model.TransposeDigits("123456789", &rng);
  EXPECT_NE(out, "123456789");
  EXPECT_EQ(out.size(), 9u);
  // Same multiset of digits.
  std::string sorted_in = "123456789";
  std::string sorted_out = out;
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_out, sorted_in);
  EXPECT_EQ(model.TransposeDigits("7", &rng), "7");
}

// --- Database generator. ---

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_records = 500;
  config.seed = 99;
  auto a = DatabaseGenerator(config).Generate();
  auto b = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  for (size_t i = 0; i < a->dataset.size(); ++i) {
    EXPECT_EQ(a->dataset.record(i), b->dataset.record(i));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig config;
  config.num_records = 200;
  config.seed = 1;
  auto a = DatabaseGenerator(config).Generate();
  config.seed = 2;
  auto b = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->dataset.size(), 0u);
  bool differs = a->dataset.size() != b->dataset.size();
  if (!differs) {
    for (size_t i = 0; i < a->dataset.size() && !differs; ++i) {
      differs = !(a->dataset.record(i) == b->dataset.record(i));
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, DuplicateCountsMatchConfig) {
  GeneratorConfig config;
  config.num_records = 4000;
  config.duplicate_selection_rate = 0.5;
  config.max_duplicates_per_record = 5;
  config.seed = 3;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  // Expected duplicates: 0.5 * 4000 selected, average 3 dups each = 6000.
  uint64_t dup_tuples = db->truth.NumDuplicateTuples();
  EXPECT_GT(dup_tuples, 5000u);
  EXPECT_LT(dup_tuples, 7000u);
  EXPECT_EQ(db->dataset.size(), config.num_records + dup_tuples);
}

TEST(GeneratorTest, NoDuplicatesWhenRateZero) {
  GeneratorConfig config;
  config.num_records = 300;
  config.duplicate_selection_rate = 0.0;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->dataset.size(), 300u);
  EXPECT_EQ(db->truth.NumTruePairs(), 0u);
}

TEST(GeneratorTest, GroundTruthPairArithmetic) {
  GeneratorConfig config;
  config.num_records = 1000;
  config.duplicate_selection_rate = 0.3;
  config.max_duplicates_per_record = 3;
  config.seed = 5;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  // Recompute true pairs by brute force over origins.
  std::map<uint32_t, uint64_t> sizes;
  for (size_t t = 0; t < db->dataset.size(); ++t) {
    ++sizes[db->truth.origin_of(static_cast<TupleId>(t))];
  }
  uint64_t expected_pairs = 0;
  for (const auto& [origin, k] : sizes) expected_pairs += k * (k - 1) / 2;
  EXPECT_EQ(db->truth.NumTruePairs(), expected_pairs);

  // IsTruePair consistency spot-check.
  for (TupleId t = 1; t < 100; ++t) {
    EXPECT_EQ(db->truth.IsTruePair(0, t),
              db->truth.origin_of(0) == db->truth.origin_of(t));
  }
  EXPECT_FALSE(db->truth.IsTruePair(0, 0));
}

TEST(GeneratorTest, RecordsHaveEmployeeShape) {
  GeneratorConfig config;
  config.num_records = 200;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->dataset.schema() == employee::MakeSchema());
  for (size_t t = 0; t < db->dataset.size(); ++t) {
    const Record& r = db->dataset.record(t);
    EXPECT_FALSE(r.field(employee::kLastName).empty());
    EXPECT_FALSE(r.field(employee::kCity).empty());
    EXPECT_EQ(r.field(employee::kState).size(), 2u);
  }
}

TEST(GeneratorTest, InvalidConfigRejected) {
  GeneratorConfig config;
  config.num_records = 0;
  EXPECT_FALSE(DatabaseGenerator(config).Generate().ok());
  config.num_records = 10;
  config.duplicate_selection_rate = 1.5;
  EXPECT_FALSE(DatabaseGenerator(config).Generate().ok());
  config.duplicate_selection_rate = 0.5;
  config.max_duplicates_per_record = -1;
  EXPECT_FALSE(DatabaseGenerator(config).Generate().ok());
}

TEST(GeneratorTest, DuplicatesResembleOriginals) {
  // With all gross-error knobs off and mild typos, duplicates should agree
  // with their original on most fields.
  GeneratorConfig config;
  config.num_records = 400;
  config.duplicate_selection_rate = 1.0;
  config.max_duplicates_per_record = 1;
  config.ssn_transpose_prob = 0.0;
  config.last_name_change_prob = 0.0;
  config.address_change_prob = 0.0;
  config.nickname_prob = 0.0;
  config.missing_field_prob = 0.0;
  config.initial_flip_prob = 0.0;
  config.field_corruption_prob = 0.2;
  config.shuffle = false;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  // Unshuffled layout: duplicates precede their original; adjacent pairs
  // share an origin.
  size_t matching_fields = 0, total_fields = 0;
  for (size_t t = 0; t + 1 < db->dataset.size(); ++t) {
    if (db->truth.origin_of(static_cast<TupleId>(t)) !=
        db->truth.origin_of(static_cast<TupleId>(t + 1))) {
      continue;
    }
    const Record& dup = db->dataset.record(static_cast<TupleId>(t));
    const Record& orig = db->dataset.record(static_cast<TupleId>(t + 1));
    for (FieldId f = 0; f < employee::kNumFields; ++f) {
      ++total_fields;
      if (dup.field(f) == orig.field(f)) ++matching_fields;
    }
  }
  ASSERT_GT(total_fields, 0u);
  EXPECT_GT(static_cast<double>(matching_fields) / total_fields, 0.75);
}

}  // namespace
}  // namespace mergepurge
