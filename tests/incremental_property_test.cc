// Deeper incremental-engine properties: batch-order insensitivity of the
// final entity count ceiling, monotone pair accumulation, and agreement
// between incremental components and an offline closure over the same
// accumulated pairs.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/multipass.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"

namespace mergepurge {
namespace {

std::vector<Dataset> SplitEvery(const Dataset& all, size_t stride) {
  std::vector<Dataset> batches;
  for (size_t start = 0; start < all.size(); start += stride) {
    Dataset batch(all.schema());
    for (size_t t = start; t < std::min(all.size(), start + stride); ++t) {
      batch.Append(all.record(static_cast<TupleId>(t)));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 500;
    config.duplicate_selection_rate = 0.6;
    config.max_duplicates_per_record = 3;
    config.seed = GetParam();
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    raw_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
  }

  MergePurgeOptions Options() const {
    MergePurgeOptions options;
    options.keys = {LastNameKey(), AddressKey()};
    options.window = 6;
    return options;
  }

  Dataset raw_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_P(IncrementalPropertyTest, PairsAccumulateMonotonically) {
  IncrementalMergePurge engine(Options());
  size_t previous_pairs = 0;
  size_t previous_records = 0;
  for (const Dataset& batch : SplitEvery(raw_, 120)) {
    ASSERT_TRUE(engine.AddBatch(batch, theory_).ok());
    EXPECT_GE(engine.pairs().size(), previous_pairs);
    EXPECT_GT(engine.size(), previous_records);
    previous_pairs = engine.pairs().size();
    previous_records = engine.size();
  }
}

TEST_P(IncrementalPropertyTest, ComponentsEqualOfflineClosureOfPairs) {
  IncrementalMergePurge engine(Options());
  for (const Dataset& batch : SplitEvery(raw_, 100)) {
    ASSERT_TRUE(engine.AddBatch(batch, theory_).ok());
  }
  auto incremental = engine.ComponentLabels();
  auto offline = TransitiveClosure(engine.pairs(), engine.size());
  ASSERT_EQ(incremental.size(), offline.size());
  // Same partition (labels may differ; co-membership must not).
  for (size_t i = 0; i < incremental.size(); i += 3) {
    for (size_t j = i + 1; j < std::min(incremental.size(), i + 40); ++j) {
      EXPECT_EQ(incremental[i] == incremental[j],
                offline[i] == offline[j])
          << i << "," << j;
    }
  }
}

TEST_P(IncrementalPropertyTest, EntityCountMatchesClosure) {
  IncrementalMergePurge engine(Options());
  for (const Dataset& batch : SplitEvery(raw_, 150)) {
    ASSERT_TRUE(engine.AddBatch(batch, theory_).ok());
  }
  // NumEntities (live union-find) == distinct labels.
  auto labels = engine.ComponentLabels();
  std::sort(labels.begin(), labels.end());
  size_t distinct =
      static_cast<size_t>(std::unique(labels.begin(), labels.end()) -
                          labels.begin());
  EXPECT_EQ(engine.NumEntities(), distinct);
}

TEST_P(IncrementalPropertyTest, FinerBatchingNeverLosesRecall) {
  // Smaller batches mean more snapshots of "within w at some point" —
  // recall is monotone (non-strictly) as batches get finer.
  double coarse_recall = 0.0;
  {
    IncrementalMergePurge engine(Options());
    for (const Dataset& batch : SplitEvery(raw_, raw_.size())) {
      ASSERT_TRUE(engine.AddBatch(batch, theory_).ok());
    }
    coarse_recall =
        EvaluateComponents(engine.ComponentLabels(), truth_).recall_percent;
  }
  {
    IncrementalMergePurge engine(Options());
    for (const Dataset& batch : SplitEvery(raw_, 60)) {
      ASSERT_TRUE(engine.AddBatch(batch, theory_).ok());
    }
    double fine_recall =
        EvaluateComponents(engine.ComponentLabels(), truth_).recall_percent;
    EXPECT_GE(fine_recall, coarse_recall - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalPropertyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace mergepurge
