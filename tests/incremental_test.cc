// IncrementalMergePurge: batch-at-a-time operation. Key property: after
// any batch sequence the incremental pair set contains every pair a
// from-scratch multi-pass run over the full concatenation would find.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/multipass.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

// Splits a generated database into `parts` batches.
std::vector<Dataset> SplitBatches(const Dataset& all, size_t parts) {
  std::vector<Dataset> batches(parts, Dataset(all.schema()));
  size_t per_batch = (all.size() + parts - 1) / parts;
  for (size_t t = 0; t < all.size(); ++t) {
    batches[std::min(t / per_batch, parts - 1)].Append(
        all.record(static_cast<TupleId>(t)));
  }
  return batches;
}

class IncrementalTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 1000;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 4;
    config.seed = 777;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    raw_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
  }

  MergePurgeOptions Options() const {
    MergePurgeOptions options;
    options.keys = StandardThreeKeys();
    options.window = 8;
    return options;
  }

  Dataset raw_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_P(IncrementalTest, SupersetOfFromScratchRun) {
  const size_t num_batches = GetParam();
  IncrementalMergePurge incremental(Options());
  for (const Dataset& batch : SplitBatches(raw_, num_batches)) {
    auto added = incremental.AddBatch(batch, theory_);
    ASSERT_TRUE(added.ok()) << added.status().ToString();
  }
  ASSERT_EQ(incremental.size(), raw_.size());

  // From-scratch reference over the identical (conditioned) data.
  Dataset conditioned = raw_;
  ConditionEmployeeDataset(&conditioned);
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 8);
  auto reference = mp.Run(conditioned, StandardThreeKeys(), theory_);
  ASSERT_TRUE(reference.ok());

  PairSet reference_pairs;
  for (const PassResult& pass : reference->passes) {
    reference_pairs.Merge(pass.pairs);
  }
  reference_pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(incremental.pairs().Contains(a, b))
        << "from-scratch pair (" << a << "," << b
        << ") missing incrementally";
  });
  EXPECT_GE(incremental.pairs().size(), reference_pairs.size());
}

TEST_P(IncrementalTest, AccuracyAtLeastFromScratch) {
  const size_t num_batches = GetParam();
  IncrementalMergePurge incremental(Options());
  for (const Dataset& batch : SplitBatches(raw_, num_batches)) {
    ASSERT_TRUE(incremental.AddBatch(batch, theory_).ok());
  }
  AccuracyReport inc_report =
      EvaluateComponents(incremental.ComponentLabels(), truth_);

  Dataset conditioned = raw_;
  ConditionEmployeeDataset(&conditioned);
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 8);
  auto reference = mp.Run(conditioned, StandardThreeKeys(), theory_);
  ASSERT_TRUE(reference.ok());
  AccuracyReport ref_report =
      EvaluateComponents(reference->component_of, truth_);

  EXPECT_GE(inc_report.recall_percent, ref_report.recall_percent - 1e-9);
}

TEST_P(IncrementalTest, SingleBatchEqualsFromScratchExactly) {
  if (GetParam() != 1) GTEST_SKIP();
  IncrementalMergePurge incremental(Options());
  ASSERT_TRUE(incremental.AddBatch(raw_, theory_).ok());

  Dataset conditioned = raw_;
  ConditionEmployeeDataset(&conditioned);
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 8);
  auto reference = mp.Run(conditioned, StandardThreeKeys(), theory_);
  ASSERT_TRUE(reference.ok());
  PairSet reference_pairs;
  for (const PassResult& pass : reference->passes) {
    reference_pairs.Merge(pass.pairs);
  }
  EXPECT_EQ(incremental.pairs().size(), reference_pairs.size());
}

INSTANTIATE_TEST_SUITE_P(Batches, IncrementalTest,
                         ::testing::Values(1, 2, 5, 10));

TEST(IncrementalEdgeTest, ValidatesOptionsAndSchemas) {
  MergePurgeOptions no_keys;
  IncrementalMergePurge bad(no_keys);
  Dataset d(employee::MakeSchema());
  EmployeeTheory theory;
  EXPECT_FALSE(bad.AddBatch(d, theory).ok());

  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 1;
  IncrementalMergePurge tiny(options);
  EXPECT_FALSE(tiny.AddBatch(d, theory).ok());

  options.window = 8;
  options.condition_records = true;
  IncrementalMergePurge wrong_schema(options);
  Dataset other(Schema({"x"}));
  other.Append(Record({"1"}));
  EXPECT_FALSE(wrong_schema.AddBatch(other, theory).ok());
}

TEST(IncrementalEdgeTest, EntitiesAndPurgeEvolve) {
  GeneratorConfig config;
  config.num_records = 200;
  config.duplicate_selection_rate = 0.8;
  config.seed = 31;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 8;
  IncrementalMergePurge incremental(options);
  EmployeeTheory theory;

  auto batches = SplitBatches(db->dataset, 3);
  size_t last_size = 0;
  for (const Dataset& batch : batches) {
    auto added = incremental.AddBatch(batch, theory);
    ASSERT_TRUE(added.ok());
    EXPECT_GE(incremental.size(), last_size);
    last_size = incremental.size();
    EXPECT_LE(incremental.NumEntities(), incremental.size());
  }
  Dataset purged = incremental.Purge();
  EXPECT_EQ(purged.size(), incremental.NumEntities());
  EXPECT_LT(purged.size(), incremental.size());
}

TEST(IncrementalEdgeTest, NewPairCountAccumulates) {
  GeneratorConfig config;
  config.num_records = 300;
  config.duplicate_selection_rate = 0.8;
  config.seed = 77;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  MergePurgeOptions options;
  options.keys = {LastNameKey()};
  options.window = 6;
  IncrementalMergePurge incremental(options);
  EmployeeTheory theory;

  uint64_t total_new = 0;
  for (const Dataset& batch : SplitBatches(db->dataset, 4)) {
    auto added = incremental.AddBatch(batch, theory);
    ASSERT_TRUE(added.ok());
    total_new += *added;
  }
  EXPECT_EQ(total_new, incremental.pairs().size());
}

}  // namespace
}  // namespace mergepurge
