#include <gtest/gtest.h>

#include "core/sorted_neighborhood.h"
#include "eval/key_quality.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "rules/rule_program.h"
#include "text/jaro_winkler.h"
#include "text/normalize.h"
#include "util/random.h"

namespace mergepurge {
namespace {

// --- Jaro / Jaro-Winkler. ---

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  // The canonical textbook example.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("ABC", "XYZ"), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.9611, 1e-3);
  // Common prefix raises Jaro, never past 1.
  double jaro = JaroSimilarity("PREFIXAB", "PREFIXYZ");
  double jw = JaroWinklerSimilarity("PREFIXAB", "PREFIXYZ");
  EXPECT_GT(jw, jaro);
  EXPECT_LE(jw, 1.0);
  // No common prefix: no boost.
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("ABC", "XBC"),
                   JaroSimilarity("ABC", "XBC"));
}

TEST(JaroTest, SymmetryAndRangeProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    auto make = [&rng] {
      std::string s;
      size_t len = rng.NextBounded(10);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('A' + rng.NextBounded(4));
      }
      return s;
    };
    std::string a = make();
    std::string b = make();
    double ab = JaroWinklerSimilarity(a, b);
    double ba = JaroWinklerSimilarity(b, a);
    EXPECT_DOUBLE_EQ(ab, ba) << a << " " << b;
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_EQ(JaroWinklerSimilarity(a, a), 1.0);
  }
}

// --- N-gram similarity. ---

TEST(NgramTest, KnownValues) {
  EXPECT_DOUBLE_EQ(NgramSimilarity("", "", 2), 1.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("A", "A", 2), 1.0);  // Shorter than n.
  EXPECT_DOUBLE_EQ(NgramSimilarity("A", "B", 2), 0.0);
  EXPECT_DOUBLE_EQ(NgramSimilarity("NIGHT", "NIGHT", 2), 1.0);
  // NIGHT vs NACHT share bigrams {HT} -> 2*1/(4+4) = 0.25.
  EXPECT_NEAR(NgramSimilarity("NIGHT", "NACHT", 2), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(NgramSimilarity("ABCD", "WXYZ", 2), 0.0);
}

TEST(NgramTest, MultisetSemantics) {
  // "AAA" has bigrams {AA, AA}; "AA" has {AA}: 2*1/(2+1) = 2/3.
  EXPECT_NEAR(NgramSimilarity("AAAA", "AAA", 2), 2.0 * 2.0 / 5.0, 1e-9);
}

TEST(NgramTest, SymmetryProperty) {
  Rng rng(37);
  for (int trial = 0; trial < 500; ++trial) {
    auto make = [&rng] {
      std::string s;
      size_t len = rng.NextBounded(12);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('A' + rng.NextBounded(3));
      }
      return s;
    };
    std::string a = make();
    std::string b = make();
    for (size_t n : {2u, 3u}) {
      EXPECT_NEAR(NgramSimilarity(a, b, n), NgramSimilarity(b, a, n), 1e-12)
          << a << " " << b << " n=" << n;
    }
  }
}

TEST(NgramJaroDslTest, AvailableAsBuiltins) {
  auto program = RuleProgram::Compile(
      "rule jw: if jaro_winkler(r1.last_name, r2.last_name) >= 0.92 "
      "then match\n"
      "rule ng: if ngram_similarity(r1.last_name, r2.last_name, 2) >= 0.6 "
      "and r1.address == r2.address then match\n",
      employee::MakeSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Record a;
  a.set_field(employee::kLastName, "MARTHA");
  Record b;
  b.set_field(employee::kLastName, "MARHTA");
  EXPECT_TRUE(program->Matches(a, b));
}

// --- Key quality analyzer. ---

class KeyQualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 1500;
    config.duplicate_selection_rate = 0.5;
    config.seed = 404;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
  GroundTruth truth_;
};

TEST_F(KeyQualityTest, ReportIsInternallyConsistent) {
  auto report = AnalyzeKeyQuality(dataset_, truth_, LastNameKey());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->true_pairs, truth_.NumTruePairs());
  EXPECT_LE(report->adjacent_pairs, report->true_pairs);
  EXPECT_LE(report->median_gap, report->p90_gap);
  EXPECT_LE(report->p90_gap, report->max_gap);
  EXPECT_GE(report->far_fraction, 0.0);
  EXPECT_LE(report->far_fraction, 1.0);
  // Coverage is monotone in w and consistent with far_fraction at w=50.
  ASSERT_EQ(report->coverage_windows.size(), 5u);
  for (size_t i = 1; i < report->coverage_percent.size(); ++i) {
    EXPECT_GE(report->coverage_percent[i], report->coverage_percent[i - 1]);
  }
  // Gap <= 50 iff NOT far; window 51 would be the exact complement, so
  // coverage at w=50 (gap <= 49) is bounded by 1 - far_fraction.
  EXPECT_LE(report->coverage_percent.back(),
            100.0 * (1.0 - report->far_fraction) + 1e-9);
}

TEST_F(KeyQualityTest, CeilingBoundsActualSnmRecall) {
  // The ceiling at w must upper-bound what a real pass with window w
  // achieves (the theory can only lose pairs, never add).
  auto report = AnalyzeKeyQuality(dataset_, truth_, LastNameKey(), {10});
  ASSERT_TRUE(report.ok());
  EmployeeTheory theory;
  auto pass = SortedNeighborhood(10).Run(dataset_, LastNameKey(), theory);
  ASSERT_TRUE(pass.ok());
  AccuracyReport accuracy =
      EvaluatePairSet(pass->pairs, dataset_.size(), truth_);
  // Direct (pre-closure) recall cannot exceed the ceiling; closure can
  // bridge a few extra pairs, so allow a small margin.
  EXPECT_LE(accuracy.recall_percent,
            report->coverage_percent[0] + 5.0);
}

TEST_F(KeyQualityTest, PerfectKeyHasTinyGaps) {
  // A key on the ORIGIN id itself (planted via ssn of uncorrupted data)
  // would give gap 1 for all pairs; approximate with dup rate 0 edge case.
  GeneratorConfig config;
  config.num_records = 100;
  config.duplicate_selection_rate = 0.0;
  config.seed = 1;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  auto report = AnalyzeKeyQuality(db->dataset, db->truth, LastNameKey());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->true_pairs, 0u);  // No duplicates -> no gaps.
}

TEST_F(KeyQualityTest, RejectsInvalidKey) {
  KeySpec bad{"bad", {KeyComponent::Full(99)}};
  EXPECT_FALSE(AnalyzeKeyQuality(dataset_, truth_, bad).ok());
}

}  // namespace
}  // namespace mergepurge
