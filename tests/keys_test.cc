#include <gtest/gtest.h>

#include "keys/key_builder.h"
#include "keys/standard_keys.h"
#include "record/schema.h"

namespace mergepurge {
namespace {

Record EmployeeRecord() {
  Record r;
  r.set_field(employee::kSsn, "123456789");
  r.set_field(employee::kFirstName, "MAURICIO");
  r.set_field(employee::kInitial, "A");
  r.set_field(employee::kLastName, "HERNANDEZ");
  r.set_field(employee::kAddress, "500 W 120 ST");
  r.set_field(employee::kApartment, "");
  r.set_field(employee::kCity, "NEW YORK");
  r.set_field(employee::kState, "NY");
  r.set_field(employee::kZip, "10027");
  return r;
}

TEST(KeyBuilderTest, FullFieldComponent) {
  KeySpec spec{"t", {KeyComponent::Full(employee::kLastName)}};
  EXPECT_EQ(KeyBuilder(spec).BuildKey(EmployeeRecord()), "HERNANDEZ");
}

TEST(KeyBuilderTest, PrefixPadsToFixedWidth) {
  KeySpec spec{"t", {KeyComponent::Prefix(employee::kLastName, 4)}};
  EXPECT_EQ(KeyBuilder(spec).BuildKey(EmployeeRecord()), "HERN");
  Record r;
  r.set_field(employee::kLastName, "LI");
  EXPECT_EQ(KeyBuilder(spec).BuildKey(r), "LI  ");
}

TEST(KeyBuilderTest, FirstNonBlank) {
  KeySpec spec{"t", {KeyComponent::FirstNonBlank(employee::kFirstName)}};
  EXPECT_EQ(KeyBuilder(spec).BuildKey(EmployeeRecord()), "M");
  Record r;
  r.set_field(employee::kFirstName, "  X");
  EXPECT_EQ(KeyBuilder(spec).BuildKey(r), "X");
  r.set_field(employee::kFirstName, "");
  EXPECT_EQ(KeyBuilder(spec).BuildKey(r), " ");
}

TEST(KeyBuilderTest, DigitPrefixSkipsNonDigits) {
  KeySpec spec{"t", {KeyComponent::DigitPrefix(employee::kSsn, 6)}};
  Record r;
  r.set_field(employee::kSsn, "12-34-5678");
  EXPECT_EQ(KeyBuilder(spec).BuildKey(r), "123456");
  r.set_field(employee::kSsn, "12");
  EXPECT_EQ(KeyBuilder(spec).BuildKey(r), "12    ");
}

TEST(KeyBuilderTest, PaperExampleKeyShape) {
  // "last name ... followed by the first non blank character of the first
  // name ... followed by the first six digits of the social security
  // field".
  KeySpec spec = LastNameKey();
  std::string key = KeyBuilder(spec).BuildKey(EmployeeRecord());
  EXPECT_EQ(key, "HERNANDEZM123456");
}

TEST(KeyBuilderTest, BuildKeysCoversDataset) {
  Dataset d(employee::MakeSchema());
  d.Append(EmployeeRecord());
  d.Append(EmployeeRecord());
  auto keys = KeyBuilder(LastNameKey()).BuildKeys(d);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], keys[1]);
}

TEST(KeySpecTest, FixedWidthReplacesFullFields) {
  KeySpec fixed = LastNameKey().FixedWidth(3);
  std::string key = KeyBuilder(fixed).BuildKey(EmployeeRecord());
  EXPECT_EQ(key, "HERM123456");
  EXPECT_EQ(fixed.name, "last-name-fixed");
}

TEST(KeySpecTest, FixedWidthKeysHaveEqualLength) {
  KeySpec fixed = LastNameKey().FixedWidth(3);
  Record a = EmployeeRecord();
  Record b;
  b.set_field(employee::kLastName, "NG");
  b.set_field(employee::kFirstName, "");
  b.set_field(employee::kSsn, "1");
  EXPECT_EQ(KeyBuilder(fixed).BuildKey(a).size(),
            KeyBuilder(fixed).BuildKey(b).size());
}

TEST(KeyBuilderTest, ValidateCatchesBadSpecs) {
  Schema schema = employee::MakeSchema();
  KeySpec empty{"e", {}};
  EXPECT_FALSE(KeyBuilder(empty).Validate(schema).ok());

  KeySpec bad_field{"b", {KeyComponent::Full(99)}};
  EXPECT_FALSE(KeyBuilder(bad_field).Validate(schema).ok());

  KeySpec zero_len{"z", {KeyComponent::Prefix(employee::kLastName, 0)}};
  EXPECT_FALSE(KeyBuilder(zero_len).Validate(schema).ok());

  EXPECT_TRUE(KeyBuilder(LastNameKey()).Validate(schema).ok());
}

TEST(StandardKeysTest, ThreeDistinctPrincipalFields) {
  auto keys = StandardThreeKeys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0].name, "last-name");
  EXPECT_EQ(keys[1].name, "first-name");
  EXPECT_EQ(keys[2].name, "address");
  EXPECT_EQ(keys[0].components[0].field, employee::kLastName);
  EXPECT_EQ(keys[1].components[0].field, employee::kFirstName);
  EXPECT_EQ(keys[2].components[0].field, employee::kAddress);
  Schema schema = employee::MakeSchema();
  for (const KeySpec& spec : keys) {
    EXPECT_TRUE(KeyBuilder(spec).Validate(schema).ok());
  }
}

TEST(StandardKeysTest, CorruptedPrincipalFieldMovesKeyApart) {
  // The motivating failure mode (§2.4): an error in the principal field
  // separates keys; an error elsewhere does not.
  Record a = EmployeeRecord();
  Record b = EmployeeRecord();
  b.set_field(employee::kLastName, "QERNANDEZ");  // First char corrupted.
  KeyBuilder last_key(LastNameKey());
  EXPECT_NE(last_key.BuildKey(a)[0], last_key.BuildKey(b)[0]);
  KeyBuilder first_key(FirstNameKey());
  EXPECT_EQ(first_key.BuildKey(a)[0], first_key.BuildKey(b)[0]);
}

}  // namespace
}  // namespace mergepurge
