// Tests for the cross-source linkage engine, the blocking baseline, and
// pair-set disk persistence.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/blocking.h"
#include "core/linkage.h"
#include "core/multipass.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "io/pairs_io.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

// --- Pair-set persistence. ---

TEST(PairsIoTest, RoundTrip) {
  PairSet pairs;
  pairs.Add(3, 9);
  pairs.Add(1, 2);
  pairs.Add(0, 100000);
  std::string path = testing::TempDir() + "/pairs_roundtrip.mpp";
  ASSERT_TRUE(WritePairSetFile(pairs, path).ok());
  Result<PairSet> loaded = ReadPairSetFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), pairs.size());
  pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(loaded->Contains(a, b));
  });
  std::remove(path.c_str());
}

TEST(PairsIoTest, EmptySetRoundTrip) {
  PairSet pairs;
  std::string path = testing::TempDir() + "/pairs_empty.mpp";
  ASSERT_TRUE(WritePairSetFile(pairs, path).ok());
  Result<PairSet> loaded = ReadPairSetFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(PairsIoTest, RejectsBadFiles) {
  std::string path = testing::TempDir() + "/pairs_bad.mpp";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("NOTMAGIC\n1 2\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadPairSetFile(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("MPP1\n5 3\n", f);  // lo >= hi.
    std::fclose(f);
  }
  EXPECT_FALSE(ReadPairSetFile(path).ok());
  EXPECT_FALSE(ReadPairSetFile("/nonexistent.mpp").ok());
  std::remove(path.c_str());
}

TEST(PairsIoTest, ClosureFromFilesMatchesInMemoryClosure) {
  // The paper's pipelined operation: each pass stores pairs on disk; the
  // closure runs over the stored files.
  PairSet pass1, pass2;
  pass1.Add(0, 1);
  pass2.Add(1, 2);
  pass2.Add(4, 5);
  std::string path1 = testing::TempDir() + "/pass1.mpp";
  std::string path2 = testing::TempDir() + "/pass2.mpp";
  ASSERT_TRUE(WritePairSetFile(pass1, path1).ok());
  ASSERT_TRUE(WritePairSetFile(pass2, path2).ok());

  auto from_disk = ClosureFromFiles({path1, path2}, 6);
  ASSERT_TRUE(from_disk.ok()) << from_disk.status().ToString();
  auto in_memory = TransitiveClosure({&pass1, &pass2}, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      EXPECT_EQ((*from_disk)[i] == (*from_disk)[j],
                in_memory[i] == in_memory[j]);
    }
  }
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(PairsIoTest, ClosureRejectsOutOfRangeIds) {
  PairSet pairs;
  pairs.Add(0, 99);
  std::string path = testing::TempDir() + "/pairs_range.mpp";
  ASSERT_TRUE(WritePairSetFile(pairs, path).ok());
  EXPECT_FALSE(ClosureFromFiles({path}, 10).ok());
  std::remove(path.c_str());
}

// --- Blocking baseline. ---

class BlockingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 1200;
    config.duplicate_selection_rate = 0.5;
    config.seed = 2025;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_F(BlockingTest, FindsDuplicatesComparablyToSnm) {
  auto blocking = BlockingMethod(3).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(blocking.ok()) << blocking.status().ToString();
  AccuracyReport report =
      EvaluatePairSet(blocking->pairs, dataset_.size(), truth_);
  // Exact blocking misses any duplicate whose block-key prefix was
  // corrupted, so its single-key recall sits below SNM's multi-pass; it
  // must still find a solid share of duplicates cheaply.
  EXPECT_GT(report.recall_percent, 30.0);
  EXPECT_LT(report.false_positive_percent, 10.0);
  EXPECT_GT(blocking->comparisons, 0u);
  // Skew indicator populated.
  BlockingMethod method(3);
  ASSERT_TRUE(method.Run(dataset_, LastNameKey(), theory_).ok());
  EXPECT_GT(method.last_largest_block(), 0u);
}

TEST_F(BlockingTest, EquivalentToFullWindowPerBlock) {
  // Blocking == clustering with one cluster per block key and an infinite
  // window. Check against SNM on the fixed key with window >= largest
  // block: every blocking pair whose members share a block must also be
  // found (same theory, same candidates).
  BlockingMethod method(3);
  auto blocking = method.Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(blocking.ok());

  SortedNeighborhood snm(method.last_largest_block() + 1);
  auto pass = snm.Run(dataset_, LastNameKey().FixedWidth(3), theory_);
  ASSERT_TRUE(pass.ok());
  // SNM with a window exceeding the largest block sees every within-block
  // pair (blocks are contiguous in the fixed-key sort order).
  blocking->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(pass->pairs.Contains(a, b));
  });
}

TEST_F(BlockingTest, CoarserBlocksCostMoreComparisons) {
  auto fine = BlockingMethod(4).Run(dataset_, LastNameKey(), theory_);
  auto coarse = BlockingMethod(1).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  EXPECT_GT(coarse->comparisons, fine->comparisons);
}

// --- Linkage engine. ---

class LinkageTest : public ::testing::Test {
 protected:
  MergePurgeOptions Options() const {
    MergePurgeOptions options;
    options.keys = StandardThreeKeys();
    options.window = 8;
    return options;
  }
};

TEST_F(LinkageTest, LinksPlantedCrossSourcePairs) {
  GeneratorConfig config;
  config.num_records = 600;
  config.duplicate_selection_rate = 0.0;  // No within-source duplicates.
  config.seed = 99;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  // Left = all records; right = every 3rd record, lightly corrupted.
  Dataset left = db->dataset;
  Dataset right(left.schema());
  ErrorModel errors;
  Rng rng(5);
  std::vector<TupleId> planted_left;
  for (size_t t = 0; t < left.size(); t += 3) {
    Record r = left.record(static_cast<TupleId>(t));
    r.set_field(employee::kFirstName,
                errors.InjectOneTypo(r.field(employee::kFirstName), &rng));
    right.Append(std::move(r));
    planted_left.push_back(static_cast<TupleId>(t));
  }

  EmployeeTheory theory;
  auto result = LinkageEngine(Options()).Run(left, right, theory);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->left_size, left.size());
  EXPECT_EQ(result->right_size, right.size());

  // Most planted links should be found; ids must be local to each source.
  size_t found = 0;
  for (const auto& [l, r] : result->links) {
    EXPECT_LT(l, left.size());
    EXPECT_LT(r, right.size());
    if (planted_left[r] == l) ++found;
  }
  EXPECT_GT(found, planted_left.size() * 7 / 10);
}

TEST_F(LinkageTest, WithinSourcePairsExcluded) {
  // Two identical records in LEFT only: they match each other but must
  // not appear as a link.
  Dataset left(employee::MakeSchema());
  Record r;
  r.set_field(employee::kSsn, "123456789");
  r.set_field(employee::kFirstName, "JOHN");
  r.set_field(employee::kLastName, "SMITH");
  r.set_field(employee::kAddress, "1 MAIN ST");
  r.set_field(employee::kCity, "NEW YORK");
  r.set_field(employee::kState, "NY");
  r.set_field(employee::kZip, "10027");
  left.Append(r);
  left.Append(r);
  Dataset right(employee::MakeSchema());
  Record other = r;
  other.set_field(employee::kSsn, "999999999");
  other.set_field(employee::kLastName, "JONES");
  other.set_field(employee::kAddress, "9 ELM AVE");
  other.set_field(employee::kFirstName, "MARY");
  right.Append(other);

  EmployeeTheory theory;
  auto result = LinkageEngine(Options()).Run(left, right, theory);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->links.empty());
}

TEST_F(LinkageTest, ValidatesInputs) {
  EmployeeTheory theory;
  Dataset left(employee::MakeSchema());
  Dataset right(Schema({"x"}));
  EXPECT_FALSE(LinkageEngine(Options()).Run(left, right, theory).ok());

  MergePurgeOptions no_keys;
  Dataset ok_right(employee::MakeSchema());
  EXPECT_FALSE(LinkageEngine(no_keys).Run(left, ok_right, theory).ok());
}

}  // namespace
}  // namespace mergepurge
