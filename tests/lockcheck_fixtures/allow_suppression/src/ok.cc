#include <thread>
namespace mergepurge {
void StartWatcher() {
  // The watcher exits on the drain signal; it must outlive this scope.
  std::thread([] {}).detach();  // lockcheck: allow(detached-thread)
}
}  // namespace mergepurge
