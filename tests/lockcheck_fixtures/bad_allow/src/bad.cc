namespace mergepurge {
// lockcheck: allow(made-up-id)
int Answer() { return 42; }
}  // namespace mergepurge
