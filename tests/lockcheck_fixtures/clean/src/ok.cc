#include "util/sync.h"
namespace mergepurge {
class Counter {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++n_;
  }
 private:
  Mutex mu_{lockrank::kLog};
  int n_ MERGEPURGE_GUARDED_BY(mu_) = 0;
};
}  // namespace mergepurge
