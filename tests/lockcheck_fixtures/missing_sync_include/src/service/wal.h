#ifndef FIXTURE_WAL_H_
#define FIXTURE_WAL_H_
namespace mergepurge {
class WalWriter {
 public:
  void Append();
};
}  // namespace mergepurge
#endif
