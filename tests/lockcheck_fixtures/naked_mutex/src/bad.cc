#include <mutex>
namespace mergepurge {
class Counter {
 private:
  std::mutex mu_;
};
}  // namespace mergepurge
