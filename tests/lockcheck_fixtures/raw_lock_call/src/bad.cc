#include "util/sync.h"
namespace mergepurge {
class Counter {
 public:
  void Bump() {
    mu_.lock();
    ++n_;
    mu_.unlock();
  }
 private:
  Mutex mu_{lockrank::kLog};
  int n_ = 0;
};
}  // namespace mergepurge
