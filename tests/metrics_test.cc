#include <gtest/gtest.h>

#include "core/duplicate_elimination.h"
#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"

namespace mergepurge {
namespace {

// Hand-built ground truth: origins {0,0,1,1,1,2}.
GroundTruth MakeTruth() {
  return GroundTruth({0, 0, 1, 1, 1, 2});
}

TEST(MetricsTest, TruePairArithmetic) {
  GroundTruth truth = MakeTruth();
  // C(2,2)=1 + C(3,2)=3 + C(1,2)=0 -> 4 true pairs, 3 duplicate tuples.
  EXPECT_EQ(truth.NumTruePairs(), 4u);
  EXPECT_EQ(truth.NumDuplicateTuples(), 3u);
}

TEST(MetricsTest, PerfectComponentsGivePerfectScores) {
  GroundTruth truth = MakeTruth();
  std::vector<uint32_t> components = {10, 10, 20, 20, 20, 30};
  AccuracyReport report = EvaluateComponents(components, truth);
  EXPECT_EQ(report.true_pairs, 4u);
  EXPECT_EQ(report.found_pairs, 4u);
  EXPECT_EQ(report.true_positives, 4u);
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_DOUBLE_EQ(report.recall_percent, 100.0);
  EXPECT_DOUBLE_EQ(report.false_positive_percent, 0.0);
  EXPECT_DOUBLE_EQ(report.precision_percent, 100.0);
}

TEST(MetricsTest, AllSingletonsFindNothing) {
  GroundTruth truth = MakeTruth();
  std::vector<uint32_t> components = {0, 1, 2, 3, 4, 5};
  AccuracyReport report = EvaluateComponents(components, truth);
  EXPECT_EQ(report.found_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.recall_percent, 0.0);
  EXPECT_DOUBLE_EQ(report.false_positive_percent, 0.0);
}

TEST(MetricsTest, OverMergingCountsFalsePositives) {
  GroundTruth truth = MakeTruth();
  // Everything in one component: found = C(6,2) = 15, TP = 4, FP = 11.
  std::vector<uint32_t> components(6, 1);
  AccuracyReport report = EvaluateComponents(components, truth);
  EXPECT_EQ(report.found_pairs, 15u);
  EXPECT_EQ(report.true_positives, 4u);
  EXPECT_EQ(report.false_positives, 11u);
  EXPECT_DOUBLE_EQ(report.recall_percent, 100.0);
  EXPECT_DOUBLE_EQ(report.false_positive_percent, 100.0 * 11.0 / 4.0);
}

TEST(MetricsTest, PartialDetection) {
  GroundTruth truth = MakeTruth();
  // Only the pair (2,3) of the size-3 cluster found: TP=1 of 4.
  std::vector<uint32_t> components = {0, 1, 7, 7, 4, 5};
  AccuracyReport report = EvaluateComponents(components, truth);
  EXPECT_EQ(report.true_positives, 1u);
  EXPECT_DOUBLE_EQ(report.recall_percent, 25.0);
}

TEST(MetricsTest, EvaluatePairSetClosesFirst) {
  GroundTruth truth = MakeTruth();
  PairSet pairs;
  pairs.Add(2, 3);
  pairs.Add(3, 4);  // Closure implies (2,4): full size-3 cluster found.
  AccuracyReport report = EvaluatePairSet(pairs, 6, truth);
  EXPECT_EQ(report.true_positives, 3u);
  EXPECT_EQ(report.false_positives, 0u);
}

TEST(MetricsTest, EmptyTruthGivesZeroRates) {
  GroundTruth truth({0, 1, 2});
  std::vector<uint32_t> components = {9, 9, 9};
  AccuracyReport report = EvaluateComponents(components, truth);
  EXPECT_EQ(report.true_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.recall_percent, 0.0);
  EXPECT_EQ(report.false_positives, 3u);
}

// --- Baseline: exact duplicate elimination. ---

TEST(ExactDuplicateEliminationTest, FindsOnlyExactCopies) {
  Dataset d(Schema({"a", "b"}));
  TupleId r0 = d.Append(Record({"x", "y"}));
  TupleId r1 = d.Append(Record({"p", "q"}));
  TupleId r2 = d.Append(Record({"x", "y"}));
  TupleId r3 = d.Append(Record({"x", "Y"}));  // Near-miss: not found.
  PassResult result = ExactDuplicateElimination().Run(d);
  auto labels = TransitiveClosure(result.pairs, d.size());
  EXPECT_EQ(labels[r0], labels[r2]);
  EXPECT_NE(labels[r0], labels[r3]);
  EXPECT_NE(labels[r0], labels[r1]);
}

TEST(ExactDuplicateEliminationTest, GroupsOfThreeChain) {
  Dataset d(Schema({"a"}));
  d.Append(Record({"x"}));
  d.Append(Record({"x"}));
  d.Append(Record({"x"}));
  PassResult result = ExactDuplicateElimination().Run(d);
  EXPECT_EQ(result.pairs.size(), 2u);  // Chained adjacent pairs.
  auto labels = TransitiveClosure(result.pairs, 3);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
}

TEST(ExactDuplicateEliminationTest, CorruptedDataDefeatsIt) {
  // On the generated noisy database, exact matching finds far fewer
  // duplicates than the theory-driven methods — the paper's motivation.
  GeneratorConfig config;
  config.num_records = 1000;
  config.duplicate_selection_rate = 0.5;
  config.seed = 88;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  PassResult result = ExactDuplicateElimination().Run(db->dataset);
  AccuracyReport report =
      EvaluatePairSet(result.pairs, db->dataset.size(), db->truth);
  EXPECT_LT(report.recall_percent, 40.0);
  EXPECT_EQ(report.false_positives, 0u);
}

// --- Table printer. ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"w", "recall"});
  table.AddRow({"2", "55.1"});
  table.AddRow({"10", "70.9"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("w   recall"), std::string::npos);
  EXPECT_NE(out.find("--  ------"), std::string::npos);
  EXPECT_NE(out.find("10  70.9"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find("1"), std::string::npos);
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(12.345), "12.35%");
  EXPECT_EQ(FormatCount(42), "42");
}

// --- ArgParser. ---

TEST(ArgParserTest, ParsesFlagForms) {
  const char* argv[] = {"prog", "--scale=0.5", "--verbose",
                        "--name=fig2", "--n=100"};
  ArgParser args(5, const_cast<char**>(argv));
  ASSERT_TRUE(args.status().ok());
  EXPECT_DOUBLE_EQ(args.GetDouble("scale", 1.0), 0.5);
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetString("name", ""), "fig2");
  EXPECT_EQ(args.GetInt("n", 0), 100);
  EXPECT_EQ(args.GetInt("missing", 7), 7);
  EXPECT_FALSE(args.Has("missing"));
}

TEST(ArgParserTest, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_FALSE(args.status().ok());
}

TEST(PaperConfigTest, ScalesAndClamps) {
  GeneratorConfig config = PaperGeneratorConfig(1000000, 0.5, 5, 0.01, 1);
  EXPECT_EQ(config.num_records, 10000u);
  GeneratorConfig tiny = PaperGeneratorConfig(1000, 0.5, 5, 0.0001, 1);
  EXPECT_EQ(tiny.num_records, 100u);  // Floor at 100.
}

}  // namespace
}  // namespace mergepurge
