// Multi-pass + transitive closure + MergePurgeEngine end-to-end tests,
// including the paper's headline property: multi-pass with a small window
// beats every constituent single pass.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/merge_purge.h"
#include "core/multipass.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

TEST(TransitiveClosureTest, ClosesChains) {
  PairSet pairs;
  pairs.Add(0, 1);
  pairs.Add(1, 2);
  pairs.Add(4, 5);
  auto labels = TransitiveClosure(pairs, 6);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[4]);
  EXPECT_NE(labels[3], labels[0]);
}

TEST(TransitiveClosureTest, UnionAcrossPassResults) {
  PairSet a, b;
  a.Add(0, 1);
  b.Add(1, 2);
  auto labels = TransitiveClosure({&a, &b}, 4);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(TransitiveClosureTest, IdempotentOnClosedSets) {
  PairSet pairs;
  pairs.Add(0, 1);
  pairs.Add(0, 2);
  pairs.Add(1, 2);
  auto once = TransitiveClosure(pairs, 3);
  // Re-running with pairs implied by the closure changes nothing.
  PairSet closed;
  for (TupleId i = 0; i < 3; ++i) {
    for (TupleId j = i + 1; j < 3; ++j) {
      if (once[i] == once[j]) closed.Add(i, j);
    }
  }
  auto twice = TransitiveClosure(closed, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(once[i] == once[j], twice[i] == twice[j]);
    }
  }
}

class MultiPassTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 2500;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 5;
    config.seed = 1234;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_F(MultiPassTest, RequiresKeys) {
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
  EXPECT_FALSE(mp.Run(dataset_, {}, theory_).ok());
}

TEST_F(MultiPassTest, MultipassBeatsEverySinglePass) {
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
  auto result = mp.Run(dataset_, StandardThreeKeys(), theory_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->passes.size(), 3u);

  AccuracyReport multipass = EvaluateComponents(result->component_of, truth_);
  for (const PassResult& pass : result->passes) {
    AccuracyReport single =
        EvaluatePairSet(pass.pairs, dataset_.size(), truth_);
    EXPECT_GE(multipass.recall_percent, single.recall_percent)
        << "pass " << pass.key_name;
  }
  // The paper reports ~90% for the closure over three keys; allow a wide
  // margin but require clearly useful accuracy.
  EXPECT_GT(multipass.recall_percent, 75.0);
  EXPECT_LT(multipass.false_positive_percent, 10.0);
}

TEST_F(MultiPassTest, ClosureContainsEveryPassPair) {
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 6);
  auto result = mp.Run(dataset_, StandardThreeKeys(), theory_);
  ASSERT_TRUE(result.ok());
  for (const PassResult& pass : result->passes) {
    pass.pairs.ForEach([&](TupleId a, TupleId b) {
      EXPECT_EQ(result->component_of[a], result->component_of[b]);
    });
  }
}

TEST_F(MultiPassTest, UnionPairCountAtLeastLargestPass) {
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 6);
  auto result = mp.Run(dataset_, StandardThreeKeys(), theory_);
  ASSERT_TRUE(result.ok());
  size_t largest = 0;
  for (const PassResult& pass : result->passes) {
    largest = std::max(largest, pass.pairs.size());
  }
  EXPECT_GE(result->union_pair_count, largest);
}

TEST_F(MultiPassTest, ClusteringMethodVariantRuns) {
  ClusteringOptions options;
  options.num_clusters = 16;
  MultiPass mp(MultiPass::Method::kClustering, 10, options);
  auto result = mp.Run(dataset_, StandardThreeKeys(), theory_);
  ASSERT_TRUE(result.ok());
  AccuracyReport report = EvaluateComponents(result->component_of, truth_);
  EXPECT_GT(report.recall_percent, 60.0);
}

// --- MergePurgeEngine facade. ---

TEST_F(MultiPassTest, EngineEndToEnd) {
  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 10;
  MergePurgeEngine engine(options);

  // Run on the RAW (unconditioned) data; the engine conditions internally.
  GeneratorConfig config;
  config.num_records = 1000;
  config.duplicate_selection_rate = 0.5;
  config.seed = 555;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  EmployeeTheory theory;
  auto result = engine.Run(db->dataset, theory);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->component_of.size(), db->dataset.size());
  EXPECT_GT(result->num_entities, 0u);
  EXPECT_LT(result->num_entities, db->dataset.size());

  AccuracyReport report = EvaluateComponents(result->component_of,
                                             db->truth);
  EXPECT_GT(report.recall_percent, 70.0);
}

TEST_F(MultiPassTest, EngineValidatesOptions) {
  EmployeeTheory theory;
  MergePurgeOptions no_keys;
  EXPECT_FALSE(MergePurgeEngine(no_keys).Run(dataset_, theory).ok());

  MergePurgeOptions tiny_window;
  tiny_window.keys = StandardThreeKeys();
  tiny_window.window = 1;
  EXPECT_FALSE(MergePurgeEngine(tiny_window).Run(dataset_, theory).ok());

  MergePurgeOptions wrong_schema;
  wrong_schema.keys = {KeySpec{"k", {KeyComponent::Full(0)}}};
  Dataset other(Schema({"x"}));
  other.Append(Record({"1"}));
  EXPECT_FALSE(MergePurgeEngine(wrong_schema).Run(other, theory).ok());
}

TEST_F(MultiPassTest, PurgeCollapsesComponentsAndMergesFields) {
  Dataset d(employee::MakeSchema());
  Record a;
  a.set_field(employee::kSsn, "123456789");
  a.set_field(employee::kFirstName, "J");
  a.set_field(employee::kLastName, "SMITH");
  Record b;
  b.set_field(employee::kSsn, "123456789");
  b.set_field(employee::kFirstName, "JOHN");  // More complete.
  b.set_field(employee::kLastName, "SMITH");
  Record c;
  c.set_field(employee::kSsn, "999999999");
  c.set_field(employee::kFirstName, "MARY");
  c.set_field(employee::kLastName, "JONES");
  d.Append(a);
  d.Append(b);
  d.Append(c);

  MergePurgeResult result;
  result.component_of = {7, 7, 9};
  Dataset purged = result.Purge(d);
  ASSERT_EQ(purged.size(), 2u);
  // Merged record keeps the longest (most complete) first name.
  EXPECT_EQ(purged.record(0).field(employee::kFirstName), "JOHN");
  EXPECT_EQ(purged.record(1).field(employee::kFirstName), "MARY");
}

TEST_F(MultiPassTest, EngineSinglePassSingleKey) {
  MergePurgeOptions options;
  options.keys = {LastNameKey()};
  options.window = 10;
  EmployeeTheory theory;
  auto result = MergePurgeEngine(options).Run(dataset_, theory);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->detail.passes.size(), 1u);
}

TEST_F(MultiPassTest, EngineClusteringMethod) {
  MergePurgeOptions options;
  options.method = MergePurgeOptions::Method::kClustering;
  options.keys = StandardThreeKeys();
  options.window = 10;
  options.clustering.num_clusters = 8;
  EmployeeTheory theory;
  auto result = MergePurgeEngine(options).Run(dataset_, theory);
  ASSERT_TRUE(result.ok());
  AccuracyReport report = EvaluateComponents(result->component_of, truth_);
  EXPECT_GT(report.recall_percent, 60.0);
}

}  // namespace
}  // namespace mergepurge
