// Negative-compile fixture: reads a GUARDED_BY field without holding its
// Mutex. tests/CMakeLists.txt try_compiles this under clang with
// -Wthread-safety -Werror=thread-safety and FAILS THE CONFIGURE if it
// compiles — i.e. the build proves the analysis still rejects the exact
// bug class the annotation layer exists to catch. Do not "fix" this file.

#include "util/sync.h"

namespace {

struct Guarded {
  mergepurge::Mutex mu;
  int value MERGEPURGE_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.value;  // Unannotated guarded access: must not compile.
}
