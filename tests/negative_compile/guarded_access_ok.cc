// Positive control for the negative-compile check: identical shape to
// guarded_access_fail.cc but taking the lock correctly, so it MUST
// compile under -Wthread-safety -Werror=thread-safety. If this one fails,
// the sibling's failure proves nothing (broken include path, broken
// flags), so tests/CMakeLists.txt requires compile-ok here before
// trusting the compile-fail there.

#include "util/sync.h"

namespace {

struct Guarded {
  mergepurge::Mutex mu;
  int value MERGEPURGE_GUARDED_BY(mu) = 0;
};

}  // namespace

int main() {
  Guarded g;
  mergepurge::MutexLock lock(g.mu);
  return g.value;
}
