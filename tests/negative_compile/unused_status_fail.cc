// Deliberately ignores a returned Status. Must FAIL to compile under
// -Werror=unused-result (Status is [[nodiscard]]): tests/CMakeLists.txt
// try_compiles this at configure time and aborts if it compiles,
// proving the error-discipline gate still rejects swallowed failures.
#include "util/status.h"

namespace mergepurge {

Status Flaky() { return Status::IoError("disk unavailable"); }

void Caller() {
  Flaky();  // BUG: the failure is silently dropped.
}

}  // namespace mergepurge

int main() {
  mergepurge::Caller();
  return 0;
}
