// The positive control for unused_status_fail.cc: handling the Status
// must compile under the same flags, proving the negative result is the
// [[nodiscard]] gate rejecting the bug, not a broken setup.
#include "util/status.h"

namespace mergepurge {

Status Flaky() { return Status::OK(); }

bool Caller() {
  Status status = Flaky();
  return status.ok();
}

}  // namespace mergepurge

int main() { return mergepurge::Caller() ? 0 : 1; }
