// JsonValue: dump/parse round-trips, string escaping (including \uXXXX
// decoding to UTF-8), 64-bit integer exactness, object order
// preservation, and parse-error reporting.

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"

namespace mergepurge {
namespace {

TEST(JsonTest, CompactDumpOfScalars) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(42).Dump(), "42");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zebra", JsonValue(1));
  object.Set("apple", JsonValue(2));
  object.Set("mango", JsonValue(3));
  EXPECT_EQ(object.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  object.Set("zebra", JsonValue(9));  // Replace keeps position.
  EXPECT_EQ(object.Dump(), "{\"zebra\":9,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, RoundTripNestedDocument) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", JsonValue("merge/purge"));
  doc.Set("ok", JsonValue(true));
  doc.Set("ratio", JsonValue(0.25));
  JsonValue passes = JsonValue::Array();
  for (int i = 0; i < 3; ++i) {
    JsonValue pass = JsonValue::Object();
    pass.Set("index", JsonValue(i));
    passes.Append(std::move(pass));
  }
  doc.Set("passes", std::move(passes));

  for (int indent : {0, 1, 2}) {
    Result<JsonValue> parsed = JsonValue::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("name")->string_value(), "merge/purge");
    EXPECT_TRUE(parsed->Find("ok")->bool_value());
    EXPECT_DOUBLE_EQ(parsed->Find("ratio")->double_value(), 0.25);
    ASSERT_EQ(parsed->Find("passes")->size(), 3u);
    EXPECT_EQ(parsed->Find("passes")->at(2).Find("index")->int_value(), 2);
  }
}

TEST(JsonTest, Int64KeptExactNotCoercedThroughDouble) {
  // 2^63 - 1 is not representable as a double; the model must keep it.
  const int64_t big = std::numeric_limits<int64_t>::max();
  JsonValue doc = JsonValue::Object();
  doc.Set("big", JsonValue(big));
  Result<JsonValue> parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("big")->kind(), JsonValue::Kind::kInt);
  EXPECT_EQ(parsed->Find("big")->int_value(), big);
}

TEST(JsonTest, EscapesControlCharactersAndQuotes) {
  JsonValue value(std::string("a\"b\\c\n\t\x01"));
  std::string dumped = value.Dump();
  EXPECT_EQ(dumped, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  Result<JsonValue> parsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\n\t\x01");
}

TEST(JsonTest, DecodesUnicodeEscapesToUtf8) {
  // U+00E9 (é) -> 2 bytes; U+2603 (snowman) -> 3 bytes.
  Result<JsonValue> parsed = JsonValue::Parse("\"caf\\u00e9 \\u2603\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->string_value(), "caf\xC3\xA9 \xE2\x98\x83");
}

TEST(JsonTest, ParseErrorsAreParseStatus) {
  const char* kBadDocs[] = {
      "",             // Empty.
      "{",            // Unterminated object.
      "[1, 2",        // Unterminated array.
      "{\"a\" 1}",    // Missing colon.
      "\"unclosed",   // Unterminated string.
      "nul",          // Bad literal.
      "1 trailing",   // Trailing garbage.
      "{\"a\":1,}",   // Trailing comma.
  };
  for (const char* text : kBadDocs) {
    Result<JsonValue> parsed = JsonValue::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
  }
}

TEST(JsonTest, ParsesWhitespaceAndNegativeNumbers) {
  Result<JsonValue> parsed =
      JsonValue::Parse("  { \"a\" : [ -5 , -2.5 , 1e3 ] }  ");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* array = parsed->Find("a");
  ASSERT_NE(array, nullptr);
  EXPECT_EQ(array->at(0).int_value(), -5);
  EXPECT_DOUBLE_EQ(array->at(1).double_value(), -2.5);
  EXPECT_DOUBLE_EQ(array->at(2).double_value(), 1000.0);
}

TEST(JsonTest, JsonEscapeHelperMatchesDump) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
}

}  // namespace
}  // namespace mergepurge
