// MetricsRegistry: counter exactness under multi-thread contention,
// gauge semantics, histogram bucket boundaries (table-driven), registry
// snapshot/reset behaviour, and the pre-registered standard catalog.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

namespace mergepurge {
namespace {

TEST(CounterTest, SingleThreadExact) {
  Counter counter("t.single");
  for (int i = 0; i < 1000; ++i) counter.Increment();
  counter.Add(42);
  EXPECT_EQ(counter.Value(), 1042u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ContendedSnapshotEqualsExactSum) {
  // N threads each add a known arithmetic series; once quiescent, the
  // striped counter must equal the exact sum — no lost increments.
  Counter counter("t.contended");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 200000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1 + static_cast<uint64_t>(t % 3));
      }
    });
  }
  uint64_t expected = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected += kPerThread * (1 + static_cast<uint64_t>(t % 3));
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), expected);
}

TEST(GaugeTest, LastWriteWinsAndAdd) {
  Gauge gauge("t.gauge");
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Add(1.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundariesTableDriven) {
  // Bounds {1, 10, 100}: bucket 0 counts v <= 1, bucket 1 counts
  // 1 < v <= 10, bucket 2 counts 10 < v <= 100, bucket 3 overflows.
  struct Case {
    double value;
    size_t expected_bucket;
  };
  const Case kCases[] = {
      {0.0, 0},  {0.5, 0},   {1.0, 0},     // At the bound: inclusive.
      {1.01, 1}, {10.0, 1},                // Just past a bound: next.
      {10.5, 2}, {100.0, 2},
      {100.5, 3}, {1e9, 3},                // Overflow bucket.
  };
  for (const Case& c : kCases) {
    LatencyHistogram histogram("t.bounds", {1.0, 10.0, 100.0});
    histogram.Record(c.value);
    HistogramSnapshot snap = histogram.Snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      EXPECT_EQ(snap.counts[i], i == c.expected_bucket ? 1u : 0u)
          << "value " << c.value << " bucket " << i;
    }
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.sum, c.value);
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram histogram("t.conc", {8.0, 64.0, 512.0});
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<double>(i % 1000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(LatencyHistogramTest, ExponentialBoundsShape) {
  std::vector<double> bounds =
      LatencyHistogram::ExponentialBounds(1.0, 4.0, 5);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[4], 256.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

TEST(MetricsRegistryTest, HandlesAreStableAndSharedByName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.count");
  Counter* b = registry.GetCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(7);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("x.count"), 7u);
  EXPECT_EQ(snap.counter("absent"), 0u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("y.count");
  LatencyHistogram* histogram = registry.GetHistogram("y.us");
  counter->Add(3);
  histogram->Record(5.0);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);  // Same handle, zeroed.
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("y.count"), 0u);
  EXPECT_EQ(snap.histograms.at("y.us").count, 0u);
}

TEST(MetricsRegistryTest, StandardCatalogPreregistersRequiredKeys) {
  MetricsRegistry registry;
  PreregisterStandardMetrics(registry);
  MetricsSnapshot snap = registry.Snapshot();
  for (const char* name :
       {metric_names::kSnmWindows, metric_names::kSnmComparisons,
        metric_names::kClosureUnions, metric_names::kResilientRetries,
        metric_names::kFaultsTripped}) {
    EXPECT_TRUE(snap.counters.count(name)) << name;
    EXPECT_EQ(snap.counter(name), 0u) << name;
  }
  EXPECT_TRUE(snap.histograms.count(metric_names::kSnmScanUs));
}

}  // namespace
}  // namespace mergepurge
