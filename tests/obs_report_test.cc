// RunReport + pipeline instrumentation: the standard catalog is
// pre-registered at zero, a fault-injected parallel run reports nonzero
// resilient.retries / faults.tripped while producing exactly the
// fault-free pair set, and committed counters are exactly-once (retried
// fragments do not double-count comparisons).

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/multipass.h"
#include "core/sorted_neighborhood.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "parallel/parallel_snm.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/fault_injector.h"

namespace mergepurge {
namespace {

namespace mn = metric_names;

class FaultInjectorGuard {
 public:
  FaultInjectorGuard() { FaultInjector::Global().Reset(); }
  ~FaultInjectorGuard() { FaultInjector::Global().Reset(); }
};

TEST(RunReportTest, PreregisteredKeysPresentAtZero) {
  MetricsRegistry registry;
  RunReport report("unit", &registry);
  report.SetOutcome(true);
  report.CaptureMetrics();
  JsonValue doc = report.ToJson();
  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* name :
       {mn::kSnmWindows, mn::kSnmComparisons, mn::kClosureUnions,
        mn::kResilientRetries, mn::kFaultsTripped, mn::kCheckpointSaves}) {
    const JsonValue* value = counters->Find(name);
    ASSERT_NE(value, nullptr) << name;
    EXPECT_EQ(value->int_value(), 0) << name;
  }
  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->Find(mn::kSnmScanUs), nullptr);
  EXPECT_EQ(doc.Find("tool")->string_value(), "unit");
  EXPECT_TRUE(doc.Find("outcome")->Find("ok")->bool_value());
}

TEST(RunReportTest, SerializesPassAndClosureStats) {
  MetricsRegistry registry;
  RunReport report("unit", &registry);
  PassResult pass;
  pass.key_name = "last-name";
  pass.windows = 99;
  pass.comparisons = 450;
  pass.matches = 12;
  pass.total_seconds = 0.5;
  report.AddPass(pass);
  JsonValue doc = report.ToJson();
  const JsonValue* passes = doc.Find("passes");
  ASSERT_NE(passes, nullptr);
  ASSERT_EQ(passes->size(), 1u);
  EXPECT_EQ(passes->at(0).Find("key")->string_value(), "last-name");
  EXPECT_EQ(passes->at(0).Find("windows")->int_value(), 99);
  EXPECT_EQ(passes->at(0).Find("comparisons")->int_value(), 450);
  // The document must round-trip through text for the validators.
  Result<JsonValue> parsed = JsonValue::Parse(doc.Dump(1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

class FaultedRunMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    GeneratorConfig config;
    config.num_records = 800;
    config.duplicate_selection_rate = 0.5;
    config.seed = 777;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    ConditionEmployeeDataset(&dataset_);
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  static TheoryFactory Factory() {
    return [] { return std::make_unique<EmployeeTheory>(); };
  }

  Dataset dataset_;
};

TEST_F(FaultedRunMetricsTest, FaultedRunReportsRetriesAndSamePairs) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  ParallelSnm parallel(4, 10);

  // Baseline: clean parallel run; note committed comparison count.
  registry.Reset();
  auto clean = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  MetricsSnapshot clean_snap = registry.Snapshot();
  ASSERT_EQ(clean_snap.counter(mn::kResilientRetries), 0u);
  ASSERT_EQ(clean_snap.counter(mn::kFaultsTripped), 0u);
  const uint64_t clean_comparisons =
      clean_snap.counter(mn::kSnmComparisons);
  ASSERT_GT(clean_comparisons, 0u);

  // Faulted: every fragment's first scan attempt fails; the run must
  // retry, trip fault points, and still commit the identical pair set.
  registry.Reset();
  FaultInjectorGuard guard;
  FaultInjector::Global().Arm(fault_points::kFragmentScan,
                              FaultSchedule::FailN(4));
  auto faulted = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();

  MetricsSnapshot faulted_snap = registry.Snapshot();
  EXPECT_GT(faulted_snap.counter(mn::kResilientRetries), 0u);
  EXPECT_GT(faulted_snap.counter(mn::kFaultsTripped), 0u);

  // Same pair set as the clean run.
  EXPECT_EQ(faulted->pairs.size(), clean->pairs.size());
  clean->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(faulted->pairs.Contains(a, b));
  });

  // Exactly-once: failed attempts flush nothing, so the committed
  // comparison count matches the clean run despite the retries.
  EXPECT_EQ(faulted_snap.counter(mn::kSnmComparisons), clean_comparisons);

  // And the captured report carries the evidence.
  RunReport report("unit-faulted");
  report.CaptureMetrics();
  JsonValue doc = report.ToJson();
  EXPECT_GT(
      doc.Find("counters")->Find(mn::kResilientRetries)->int_value(), 0);
  EXPECT_GT(doc.Find("counters")->Find(mn::kFaultsTripped)->int_value(), 0);
}

}  // namespace
}  // namespace mergepurge
