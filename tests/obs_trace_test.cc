// TraceRecorder / Span: parent-child nesting, disabled-recorder
// no-ops, cross-thread span attribution, and the Chrome trace-event
// JSON export (must parse back and carry the required event fields).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace mergepurge {
namespace {

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  ASSERT_FALSE(recorder.enabled());
  {
    Span outer(recorder, "outer");
    Span inner(recorder, "inner");
  }
  EXPECT_EQ(recorder.span_count(), 0u);
}

TEST(TraceTest, NestedSpansLinkParentIds) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    Span outer(recorder, "outer");
    {
      Span middle(recorder, "middle");
      Span inner(recorder, "inner");
    }
    Span sibling(recorder, "sibling");
  }
  // Spans record at destruction: inner, middle, sibling, outer.
  std::vector<TraceSpan> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 4u);
  const TraceSpan* outer = nullptr;
  const TraceSpan* middle = nullptr;
  const TraceSpan* inner = nullptr;
  const TraceSpan* sibling = nullptr;
  for (const TraceSpan& span : spans) {
    if (span.name == "outer") outer = &span;
    if (span.name == "middle") middle = &span;
    if (span.name == "inner") inner = &span;
    if (span.name == "sibling") sibling = &span;
  }
  ASSERT_TRUE(outer && middle && inner && sibling);
  EXPECT_EQ(outer->parent_id, 0u);          // Root.
  EXPECT_EQ(middle->parent_id, outer->id);
  EXPECT_EQ(inner->parent_id, middle->id);  // inner opened under middle.
  EXPECT_EQ(sibling->parent_id, outer->id); // middle closed first.
  EXPECT_GE(outer->duration_us, middle->duration_us);
}

TEST(TraceTest, SpansOnDifferentThreadsAreIndependentRoots) {
  TraceRecorder recorder;
  recorder.Enable();
  std::thread worker([&recorder] {
    Span span(recorder, "worker-root");
  });
  {
    Span span(recorder, "main-root");
  }
  worker.join();
  for (const TraceSpan& span : recorder.Spans()) {
    EXPECT_EQ(span.parent_id, 0u) << span.name;
  }
  // Two distinct thread ordinals must appear.
  std::vector<TraceSpan> spans = recorder.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].thread_ordinal, spans[1].thread_ordinal);
}

TEST(TraceTest, ChromeJsonExportParsesWithRequiredFields) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    Span span(recorder, "phase");
    span.AddArg("key", std::string("last-name"));
    span.AddArg("count", uint64_t{12});
  }
  JsonValue doc = recorder.ToChromeJson();
  // Round-trip through text: what we write must be what tools read.
  Result<JsonValue> parsed = JsonValue::Parse(doc.Dump(/*indent=*/1));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 1u);
  const JsonValue& event = events->at(0);
  EXPECT_EQ(event.Find("name")->string_value(), "phase");
  EXPECT_EQ(event.Find("ph")->string_value(), "X");
  ASSERT_NE(event.Find("ts"), nullptr);
  ASSERT_NE(event.Find("dur"), nullptr);
  ASSERT_NE(event.Find("tid"), nullptr);
  const JsonValue* event_args = event.Find("args");
  ASSERT_NE(event_args, nullptr);
  EXPECT_EQ(event_args->Find("key")->string_value(), "last-name");
  EXPECT_EQ(event_args->Find("count")->string_value(), "12");
}

TEST(TraceTest, ClearResetsSpansAndIds) {
  TraceRecorder recorder;
  recorder.Enable();
  { Span span(recorder, "a"); }
  ASSERT_EQ(recorder.span_count(), 1u);
  uint64_t first_id = recorder.Spans()[0].id;
  recorder.Clear();
  EXPECT_EQ(recorder.span_count(), 0u);
  { Span span(recorder, "b"); }
  EXPECT_EQ(recorder.Spans()[0].id, first_id);  // Ids restart.
}

TEST(TraceTest, EnablingMidSpanDoesNotRecordHalfOpenSpan) {
  // active_ is latched at construction; a span opened while disabled
  // stays inert even if the recorder is enabled before it closes.
  TraceRecorder recorder;
  {
    Span span(recorder, "latched");
    recorder.Enable();
  }
  EXPECT_EQ(recorder.span_count(), 0u);
}

}  // namespace
}  // namespace mergepurge
