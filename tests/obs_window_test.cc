// Windowed-rate math for live introspection (obs/window.h): snapshot
// diffing with counter-reset detection, quantile estimation from bucket
// counts, and the timestamped snapshot ring that turns "since boot"
// metrics into "over the last N seconds" rates.

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/window.h"

namespace mergepurge {
namespace {

HistogramSnapshot MakeHistogram(std::vector<double> bounds,
                                std::vector<uint64_t> counts,
                                double sum = 0.0) {
  HistogramSnapshot h;
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  for (uint64_t c : h.counts) h.count += c;
  h.sum = sum;
  return h;
}

// --- DiffSnapshots. ---

TEST(DiffSnapshotsTest, CountersSubtract) {
  MetricsSnapshot older, newer;
  older.counters["requests"] = 100;
  newer.counters["requests"] = 140;
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  EXPECT_EQ(delta.counter("requests"), 40u);
}

TEST(DiffSnapshotsTest, CounterResetDegradesToNewerValue) {
  // A counter that went backwards means the registry was reset between
  // the samples; the delta must not go negative (or wrap).
  MetricsSnapshot older, newer;
  older.counters["requests"] = 1000;
  newer.counters["requests"] = 7;
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  EXPECT_EQ(delta.counter("requests"), 7u);
}

TEST(DiffSnapshotsTest, CounterOnlyInNewerPassesThrough) {
  MetricsSnapshot older, newer;
  newer.counters["fresh"] = 5;
  older.counters["stale"] = 9;
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  EXPECT_EQ(delta.counter("fresh"), 5u);
  // Metrics that vanished have no meaningful rate; they are dropped.
  EXPECT_EQ(delta.counters.count("stale"), 0u);
}

TEST(DiffSnapshotsTest, GaugesAreInstantaneousAndPassThrough) {
  MetricsSnapshot older, newer;
  older.gauges["resident"] = 10.0;
  newer.gauges["resident"] = 4.0;  // Gauges may legitimately fall.
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  ASSERT_EQ(delta.gauges.count("resident"), 1u);
  EXPECT_DOUBLE_EQ(delta.gauges["resident"], 4.0);
}

TEST(DiffSnapshotsTest, HistogramsDiffBucketwise) {
  MetricsSnapshot older, newer;
  older.histograms["h"] = MakeHistogram({1.0, 10.0}, {1, 2, 0}, 12.0);
  newer.histograms["h"] = MakeHistogram({1.0, 10.0}, {3, 5, 1}, 60.0);
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  const HistogramSnapshot& h = delta.histograms.at("h");
  ASSERT_EQ(h.counts.size(), 3u);
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 3u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.count, 6u);
  EXPECT_DOUBLE_EQ(h.sum, 48.0);
}

TEST(DiffSnapshotsTest, HistogramBoundsMismatchFallsBackToNewer) {
  // Re-registration with different bounds: bucketwise subtraction would
  // be meaningless, so the newer histogram passes through whole.
  MetricsSnapshot older, newer;
  older.histograms["h"] = MakeHistogram({1.0}, {4, 4});
  newer.histograms["h"] = MakeHistogram({1.0, 10.0}, {1, 1, 1});
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  const HistogramSnapshot& h = delta.histograms.at("h");
  EXPECT_EQ(h.bounds.size(), 2u);
  EXPECT_EQ(h.count, 3u);
}

TEST(DiffSnapshotsTest, HistogramResetFallsBackToNewer) {
  // A bucket that went backwards signals a reset, same as counters.
  MetricsSnapshot older, newer;
  older.histograms["h"] = MakeHistogram({1.0}, {10, 10});
  newer.histograms["h"] = MakeHistogram({1.0}, {2, 0});
  MetricsSnapshot delta = DiffSnapshots(older, newer);
  const HistogramSnapshot& h = delta.histograms.at("h");
  EXPECT_EQ(h.counts[0], 2u);
  EXPECT_EQ(h.counts[1], 0u);
  EXPECT_EQ(h.count, 2u);
}

// --- HistogramQuantile. ---

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  HistogramSnapshot empty = MakeHistogram({1.0, 10.0}, {0, 0, 0});
  EXPECT_DOUBLE_EQ(HistogramQuantile(empty, 0.5), 0.0);
}

TEST(HistogramQuantileTest, QuantilesLandInTheRightBucket) {
  // 10 samples <= 100, 80 in (100, 1000], 10 in (1000, 10000].
  HistogramSnapshot h =
      MakeHistogram({100.0, 1000.0, 10000.0}, {10, 80, 10, 0});
  const double p50 = HistogramQuantile(h, 0.50);
  EXPECT_GT(p50, 100.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = HistogramQuantile(h, 0.99);
  EXPECT_GT(p99, 1000.0);
  EXPECT_LE(p99, 10000.0);
  // Quantiles are monotone in q.
  EXPECT_LE(HistogramQuantile(h, 0.10), p50);
  EXPECT_LE(p50, HistogramQuantile(h, 0.90));
}

TEST(HistogramQuantileTest, OverflowBucketReportsLastFiniteBound) {
  HistogramSnapshot h = MakeHistogram({100.0, 1000.0}, {0, 0, 50});
  // Every sample exceeded the last bound; the estimate is a floor.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 1000.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 1000.0);
}

TEST(HistogramQuantileTest, SingleSampleIsInsideItsBucket) {
  HistogramSnapshot h = MakeHistogram({100.0, 1000.0}, {0, 1, 0});
  const double p50 = HistogramQuantile(h, 0.5);
  EXPECT_GT(p50, 100.0);
  EXPECT_LE(p50, 1000.0);
}

// --- SnapshotRing. ---

MetricsSnapshot CounterOnly(uint64_t requests) {
  MetricsSnapshot s;
  s.counters["requests"] = requests;
  return s;
}

TEST(SnapshotRingTest, EmptyRingIsInvalid) {
  SnapshotRing ring;
  EXPECT_FALSE(ring.Over(10.0).valid);
}

TEST(SnapshotRingTest, SingleSampleIsInvalid) {
  SnapshotRing ring;
  ring.Push(1.0, CounterOnly(10));
  SnapshotWindow window = ring.Over(10.0);
  EXPECT_FALSE(window.valid);
}

TEST(SnapshotRingTest, ZeroSpanIsInvalid) {
  SnapshotRing ring;
  ring.Push(1.0, CounterOnly(10));
  ring.Push(1.0, CounterOnly(20));  // Same timestamp: no span to rate.
  EXPECT_FALSE(ring.Over(10.0).valid);
}

TEST(SnapshotRingTest, TwoSamplesRateTheWindow) {
  SnapshotRing ring;
  ring.Push(1.0, CounterOnly(100));
  ring.Push(3.0, CounterOnly(160));
  SnapshotWindow window = ring.Over(10.0);
  ASSERT_TRUE(window.valid);
  EXPECT_DOUBLE_EQ(window.seconds, 2.0);
  EXPECT_EQ(window.delta.counter("requests"), 60u);
}

TEST(SnapshotRingTest, WindowSelectsOldestSampleInsideIt) {
  SnapshotRing ring;
  ring.Push(0.0, CounterOnly(0));    // 12s old: outside a 10s window.
  ring.Push(5.0, CounterOnly(50));   // 7s old: the window's far edge.
  ring.Push(10.0, CounterOnly(100));
  ring.Push(12.0, CounterOnly(120));
  SnapshotWindow window = ring.Over(10.0);
  ASSERT_TRUE(window.valid);
  EXPECT_DOUBLE_EQ(window.seconds, 7.0);
  EXPECT_EQ(window.delta.counter("requests"), 70u);
}

TEST(SnapshotRingTest, OutOfOrderPushIsIgnored) {
  SnapshotRing ring;
  ring.Push(5.0, CounterOnly(50));
  ring.Push(4.0, CounterOnly(9999));  // Stale: dropped.
  EXPECT_EQ(ring.size(), 1u);
  ring.Push(6.0, CounterOnly(60));
  SnapshotWindow window = ring.Over(10.0);
  ASSERT_TRUE(window.valid);
  EXPECT_EQ(window.delta.counter("requests"), 10u);
}

TEST(SnapshotRingTest, CapacityEvictsOldestSamples) {
  SnapshotRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.Push(static_cast<double>(i),
              CounterOnly(static_cast<uint64_t>(i) * 10));
  }
  EXPECT_EQ(ring.size(), 4u);
  // Only samples 6..9 remain; a huge window still spans just those.
  SnapshotWindow window = ring.Over(100.0);
  ASSERT_TRUE(window.valid);
  EXPECT_DOUBLE_EQ(window.seconds, 3.0);
  EXPECT_EQ(window.delta.counter("requests"), 30u);
}

}  // namespace
}  // namespace mergepurge
