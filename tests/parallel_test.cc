// Parallel implementations: fragmentation coverage properties, LPT load
// balancing, and the key correctness property — the parallel executors
// produce EXACTLY the serial pair sets (the replicated bands make the
// fragmentation invisible, paper figure 5).

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

#include "core/clustering_method.h"
#include "core/sorted_neighborhood.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "parallel/coordinator.h"
#include "parallel/cost_model.h"
#include "parallel/load_balance.h"
#include "parallel/parallel_clustering.h"
#include "parallel/parallel_snm.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

// --- Fragmentation. ---

TEST(FragmentsTest, CoverAllPositionsOnce) {
  auto fragments = MakeOverlappingFragments(100, 4, 10);
  ASSERT_EQ(fragments.size(), 4u);
  // Fresh (non-band) regions tile [0, 100).
  EXPECT_EQ(fragments[0].begin, 0u);
  EXPECT_EQ(fragments.back().end, 100u);
  for (size_t i = 1; i < fragments.size(); ++i) {
    // Band: fragment i starts w-1 before the previous fragment's end.
    EXPECT_EQ(fragments[i].begin + 9, fragments[i - 1].end);
  }
}

TEST(FragmentsTest, SmallInputsClamp) {
  EXPECT_TRUE(MakeOverlappingFragments(0, 4, 10).empty());
  auto fragments = MakeOverlappingFragments(3, 8, 10);
  EXPECT_LE(fragments.size(), 3u);
  EXPECT_EQ(fragments[0].begin, 0u);
}

TEST(FragmentsTest, WindowLargerThanFragment) {
  auto fragments = MakeOverlappingFragments(10, 5, 8);
  // Bands clamp at zero rather than underflowing.
  for (const Fragment& f : fragments) {
    EXPECT_LE(f.begin, f.end);
    EXPECT_LE(f.end, 10u);
  }
  EXPECT_EQ(fragments.back().end, 10u);
}

TEST(BlockCyclicTest, BlocksTileWithBands) {
  auto per_site = MakeBlockCyclicFragments(100, 3, 20, 5);
  ASSERT_EQ(per_site.size(), 3u);
  // Collect all blocks, verify stride m-(w-1)=16 and full coverage.
  std::vector<Fragment> blocks;
  for (const auto& site_blocks : per_site) {
    blocks.insert(blocks.end(), site_blocks.begin(), site_blocks.end());
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Fragment& a, const Fragment& b) {
              return a.begin < b.begin;
            });
  EXPECT_EQ(blocks.front().begin, 0u);
  EXPECT_EQ(blocks.back().end, 100u);
  for (size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].begin, blocks[i - 1].begin + 16);
    // Overlap of w-1 = 4 positions.
    EXPECT_EQ(blocks[i - 1].end - blocks[i].begin, 4u);
  }
}

TEST(BlockCyclicTest, InputSmallerThanWindow) {
  // n < w: everything fits in one block; no bands are possible.
  auto per_site = MakeBlockCyclicFragments(5, 3, 20, 10);
  size_t blocks = 0;
  size_t covered_end = 0;
  for (const auto& site : per_site) {
    for (const Fragment& block : site) {
      ++blocks;
      EXPECT_EQ(block.begin, 0u);
      covered_end = std::max(covered_end, block.end);
    }
  }
  EXPECT_EQ(blocks, 1u);
  EXPECT_EQ(covered_end, 5u);
}

TEST(BlockCyclicTest, BlockSizeBelowClampIsRaised) {
  // m below 2*(w-1) would drop boundary pairs; the coordinator raises it
  // to the clamp, so every stride is m_eff - (w-1) >= w-1.
  auto per_site = MakeBlockCyclicFragments(200, 3, 2, 8);
  std::vector<Fragment> blocks;
  for (const auto& site : per_site) {
    blocks.insert(blocks.end(), site.begin(), site.end());
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const Fragment& a, const Fragment& b) {
              return a.begin < b.begin;
            });
  ASSERT_FALSE(blocks.empty());
  EXPECT_EQ(blocks.front().begin, 0u);
  EXPECT_EQ(blocks.back().end, 200u);
  for (size_t i = 1; i < blocks.size(); ++i) {
    // Consecutive blocks overlap by exactly w-1 = 7 positions.
    EXPECT_EQ(blocks[i - 1].end - blocks[i].begin, 7u);
    EXPECT_GE(blocks[i - 1].size(), 14u);  // Clamped to 2*(w-1).
  }
}

TEST(BlockCyclicTest, MoreProcessorsThanRecords) {
  // p > n: extra sites simply receive no blocks; coverage is unaffected.
  auto per_site = MakeBlockCyclicFragments(6, 16, 20, 3);
  ASSERT_EQ(per_site.size(), 16u);
  size_t blocks = 0;
  size_t covered_end = 0;
  for (const auto& site : per_site) {
    for (const Fragment& block : site) {
      ++blocks;
      covered_end = std::max(covered_end, block.end);
      EXPECT_LE(block.end, 6u);
    }
  }
  EXPECT_GE(blocks, 1u);
  EXPECT_EQ(covered_end, 6u);
}

TEST(BlockCyclicTest, ZeroRecordsYieldsNoBlocks) {
  auto per_site = MakeBlockCyclicFragments(0, 4, 20, 5);
  for (const auto& site : per_site) EXPECT_TRUE(site.empty());
}

// --- LPT. ---

TEST(LptTest, SingleProcessorTakesAll) {
  auto result = LptAssign({5, 3, 8}, 1);
  EXPECT_EQ(result.loads[0], 16u);
  EXPECT_DOUBLE_EQ(result.imbalance, 1.0);
}

TEST(LptTest, BalancesEqualJobs) {
  std::vector<uint64_t> jobs(12, 10);
  auto result = LptAssign(jobs, 4);
  for (uint64_t load : result.loads) EXPECT_EQ(load, 30u);
  EXPECT_DOUBLE_EQ(result.imbalance, 1.0);
}

TEST(LptTest, LargeJobDominates) {
  auto result = LptAssign({100, 1, 1, 1}, 2);
  // LPT puts the 100 alone on one machine, the three 1s on the other.
  EXPECT_EQ(std::max(result.loads[0], result.loads[1]), 100u);
  EXPECT_EQ(std::min(result.loads[0], result.loads[1]), 3u);
}

TEST(LptTest, MakespanWithinGrahamBound) {
  // LPT is within 4/3 - 1/(3m) of optimal; against the trivial lower
  // bound max(total/m, max_job) this must hold for random inputs.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> jobs;
    size_t count = 5 + rng.NextBounded(40);
    for (size_t i = 0; i < count; ++i) jobs.push_back(1 + rng.NextBounded(1000));
    size_t m = 1 + rng.NextBounded(8);
    auto result = LptAssign(jobs, m);
    uint64_t total = 0, max_job = 0;
    for (uint64_t j : jobs) {
      total += j;
      max_job = std::max(max_job, j);
    }
    double lower_bound = std::max(
        static_cast<double>(total) / static_cast<double>(m),
        static_cast<double>(max_job));
    uint64_t makespan =
        *std::max_element(result.loads.begin(), result.loads.end());
    EXPECT_LE(static_cast<double>(makespan),
              lower_bound * (4.0 / 3.0) + 1e-9);
  }
}

TEST(LptTest, AssignmentIndicesValid) {
  auto result = LptAssign({1, 2, 3, 4, 5}, 3);
  ASSERT_EQ(result.assignment.size(), 5u);
  for (uint32_t p : result.assignment) EXPECT_LT(p, 3u);
}

// --- Parallel == serial equivalence. ---

class ParallelEquivalenceTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 1200;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 4;
    config.seed = 2024;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    ConditionEmployeeDataset(&dataset_);
  }

  static TheoryFactory Factory() {
    return [] { return std::make_unique<EmployeeTheory>(); };
  }

  Dataset dataset_;
};

TEST_P(ParallelEquivalenceTest, SnmMatchesSerialExactly) {
  const size_t processors = GetParam();
  EmployeeTheory serial_theory;
  auto serial =
      SortedNeighborhood(10).Run(dataset_, LastNameKey(), serial_theory);
  ASSERT_TRUE(serial.ok());

  ParallelSnm parallel(processors, 10);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->pairs.size(), serial->pairs.size());
  serial->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(result->pairs.Contains(a, b));
  });
}

TEST_P(ParallelEquivalenceTest, BlockCyclicSnmMatchesSerialExactly) {
  const size_t processors = GetParam();
  EmployeeTheory serial_theory;
  auto serial =
      SortedNeighborhood(10).Run(dataset_, LastNameKey(), serial_theory);
  ASSERT_TRUE(serial.ok());

  // Block-cyclic coordinator deal with small memory blocks.
  ParallelSnm parallel(processors, 10, /*block_records=*/64);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->pairs.size(), serial->pairs.size());
  serial->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(result->pairs.Contains(a, b));
  });
}

TEST(BlockCyclicTest, TinyBlocksClampedForCoverage) {
  // Blocks smaller than 2*(w-1) would lose boundary pairs; the coordinator
  // clamps them.
  auto per_site = MakeBlockCyclicFragments(100, 2, 4, 10);
  for (const auto& site : per_site) {
    for (const Fragment& block : site) {
      EXPECT_GE(block.size(), 9u);  // >= 2*(w-1), or the tail remainder.
    }
  }
}

TEST_P(ParallelEquivalenceTest, ClusteringMatchesSerialPairSet) {
  const size_t processors = GetParam();
  // Serial clustering with the same TOTAL cluster count as the parallel
  // run (C per processor * P).
  ClusteringOptions serial_options;
  serial_options.num_clusters = 8 * processors;
  serial_options.window = 10;
  EmployeeTheory serial_theory;
  auto serial = ClusteringMethod(serial_options)
                    .Run(dataset_, LastNameKey(), serial_theory);
  ASSERT_TRUE(serial.ok());

  ClusteringOptions parallel_options;
  parallel_options.num_clusters = 8;  // Per processor.
  parallel_options.window = 10;
  ParallelClustering parallel(processors, parallel_options);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->pairs.size(), serial->pairs.size());
  serial->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(result->pairs.Contains(a, b));
  });
}

INSTANTIATE_TEST_SUITE_P(Processors, ParallelEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 7));

TEST(ParallelSnmTest, RejectsTinyWindow) {
  Dataset d(employee::MakeSchema());
  ParallelSnm parallel(2, 1);
  auto result = parallel.Run(d, LastNameKey(), [] {
    return std::make_unique<EmployeeTheory>();
  });
  EXPECT_FALSE(result.ok());
}

TEST(ParallelClusteringTest, ReportsBalance) {
  GeneratorConfig config;
  config.num_records = 800;
  config.seed = 9;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  ConditionEmployeeDataset(&db->dataset);

  ClusteringOptions options;
  options.num_clusters = 10;
  ParallelClustering parallel(4, options);
  auto result = parallel.Run(db->dataset, LastNameKey(), [] {
    return std::make_unique<EmployeeTheory>();
  });
  ASSERT_TRUE(result.ok());
  const LoadBalanceResult& balance = parallel.last_balance();
  EXPECT_EQ(balance.loads.size(), 4u);
  EXPECT_GE(balance.imbalance, 1.0);
  EXPECT_LT(balance.imbalance, 2.0);
}

// --- Cost models. ---

TEST(SerialCostModelTest, FitRecoversConstants) {
  PassResult pass;
  pass.create_keys_seconds = 0.0;
  // Fabricate a pass consistent with c=2e-6, alpha=5.
  size_t n = 100000;
  double c = 2e-6;
  pass.sort_seconds = c * n * std::log2(static_cast<double>(n));
  pass.comparisons = 9 * n;  // w=10.
  pass.scan_seconds = 5.0 * c * pass.comparisons;
  SerialCostModel model = SerialCostModel::Fit(pass, n);
  EXPECT_NEAR(model.c, c, c * 0.01);
  EXPECT_NEAR(model.alpha, 5.0, 0.05);
}

TEST(SerialCostModelTest, MultiPassCheaperThanHugeSinglePass) {
  SerialCostModel model;
  model.c = 1.2e-5;
  model.alpha = 6.0;
  size_t n = 13751;  // The paper's memory-resident database.
  double crossover = model.CrossoverWindow(n, 10, 3);
  // Paper: "the multi-pass approach dominates ... when W > 41" (with
  // closure terms; without them the floor is (r-1)/alpha*logN + rw ~ 34.6).
  EXPECT_GT(crossover, 30.0);
  EXPECT_LT(crossover, 50.0);
  EXPECT_GT(model.SinglePassSeconds(n, static_cast<size_t>(crossover) + 20),
            model.MultiPassSeconds(n, 10, 3));
}

TEST(SimulatedClusterTest, MoreProcessorsNeverSlower) {
  ClusterModelParams params;
  SimulatedCluster cluster(params);
  double prev_snm = 1e18, prev_cl = 1e18;
  for (size_t p = 1; p <= 8; ++p) {
    double snm = cluster.SnmPassSeconds(1000000, 10, p);
    double cl = cluster.ClusteringPassSeconds(1000000, 10, p, 100);
    EXPECT_LE(snm, prev_snm * 1.02);
    EXPECT_LE(cl, prev_cl * 1.02);
    prev_snm = snm;
    prev_cl = cl;
  }
}

TEST(SimulatedClusterTest, SublinearSpeedupFromSerialTerms) {
  ClusterModelParams params;
  SimulatedCluster cluster(params);
  double t1 = cluster.SnmPassSeconds(1000000, 10, 1);
  double t8 = cluster.SnmPassSeconds(1000000, 10, 8);
  double speedup = t1 / t8;
  EXPECT_GT(speedup, 1.5);   // Parallelism helps...
  EXPECT_LT(speedup, 8.0);   // ...but the broadcast term keeps it sublinear.
}

TEST(SimulatedClusterTest, CalibrateLikePaperPreservesShape) {
  // Whatever the fitted constants are (1995 or modern hardware), the
  // paper-ratio calibration must yield: meaningful but sublinear speedup,
  // and clustering <= SNM.
  for (double c : {1.2e-5, 2.7e-8}) {
    for (double alpha : {6.0, 130.0}) {
      SerialCostModel fitted;
      fitted.c = c;
      fitted.alpha = alpha;
      ClusterModelParams params =
          CalibrateLikePaper(fitted, 1000000, 10, 1.05);
      SimulatedCluster cluster(params);
      double t1 = cluster.SnmPassSeconds(1000000, 10, 1);
      double t8 = cluster.SnmPassSeconds(1000000, 10, 8);
      double speedup = t1 / t8;
      EXPECT_GT(speedup, 2.5) << "c=" << c << " alpha=" << alpha;
      EXPECT_LT(speedup, 7.5) << "c=" << c << " alpha=" << alpha;
      EXPECT_LE(cluster.ClusteringPassSeconds(1000000, 10, 4, 100),
                cluster.SnmPassSeconds(1000000, 10, 4) * 1.10);
    }
  }
}

TEST(SimulatedClusterTest, ClusteringFasterThanSnm) {
  // Figure 6: "the clustering method is, as expected, a faster parallel
  // process than the sorted-neighborhood method."
  ClusterModelParams params;
  SimulatedCluster cluster(params);
  for (size_t p = 1; p <= 8; ++p) {
    EXPECT_LT(cluster.ClusteringPassSeconds(1000000, 10, p, 100),
              cluster.SnmPassSeconds(1000000, 10, p) * 1.05);
  }
}

}  // namespace
}  // namespace mergepurge
