// Robustness: the lexer/parser/compiler — and the static analyzer, which
// accepts anything that parses — must return a Status / report (never
// crash, never hang) on arbitrary garbage, truncations and mutations of
// valid programs.

#include <string>

#include <gtest/gtest.h>

#include "rules/analysis/analyzer.h"
#include "rules/employee_rules_text.h"
#include "rules/parser.h"
#include "rules/rule_program.h"
#include "util/random.h"

namespace mergepurge {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  static constexpr char kChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 .,:()\"<>=!#\n\t_-r1r2";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string source;
    size_t len = rng.NextBounded(200);
    for (size_t i = 0; i < len; ++i) {
      source += kChars[rng.NextBounded(sizeof(kChars) - 1)];
    }
    // Must return, with either a valid AST or an error status; whatever
    // parses must also survive the analyzer.
    auto ast = ParseRuleProgram(source);
    if (ast.ok()) AnalyzeRuleProgram(*ast);
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam() + 1000);
  static constexpr const char* kTokens[] = {
      "rule",  "if",    "then",  "match",  "and",    "or",
      "not",   "(",     ")",     "==",     ">=",     "<",
      "r1",    "r2",    ".",     "ssn",    "city",   "similarity",
      "empty", "0.8",   "\"x\"", ",",      ":",      "name",
      "merge", "prefer", "longest",
  };
  for (int trial = 0; trial < 2000; ++trial) {
    std::string source;
    size_t len = rng.NextBounded(60);
    for (size_t i = 0; i < len; ++i) {
      source += kTokens[rng.NextBounded(27)];
      source += ' ';
    }
    auto ast = ParseRuleProgram(source);
    if (ast.ok()) AnalyzeRuleProgram(*ast);
  }
}

TEST_P(ParserFuzzTest, TruncationsOfValidProgramNeverCrash) {
  std::string valid(EmployeeRulesText());
  Rng rng(GetParam() + 2000);
  Schema schema = employee::MakeSchema();
  for (int trial = 0; trial < 150; ++trial) {
    size_t cut = rng.NextBounded(valid.size());
    std::string truncated = valid.substr(0, cut);
    auto program = RuleProgram::Compile(truncated, schema);
    (void)program;
    AnalyzeRuleSource(truncated);
  }
}

TEST_P(ParserFuzzTest, SingleCharMutationsNeverCrash) {
  std::string valid(EmployeeRulesText());
  Rng rng(GetParam() + 3000);
  Schema schema = employee::MakeSchema();
  static constexpr char kChars[] = "a9(.\"=x ";
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = valid;
    mutated[rng.NextBounded(mutated.size())] =
        kChars[rng.NextBounded(sizeof(kChars) - 1)];
    AnalyzeRuleSource(mutated);
    auto program = RuleProgram::Compile(mutated, schema);
    if (program.ok()) {
      // A surviving program must still be evaluable.
      Record r;
      r.set_field(employee::kSsn, "123456789");
      program->Matches(r, r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(1, 2));

}  // namespace
}  // namespace mergepurge
