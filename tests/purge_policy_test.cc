#include <gtest/gtest.h>

#include "core/purge_policy.h"
#include "rules/rule_program.h"

namespace mergepurge {
namespace {

Dataset ClassDataset() {
  // Three records of one entity with conflicting field values.
  Dataset d(Schema({"name", "nick", "city"}));
  d.Append(Record({"JO", "JOEY", "NYC"}));
  d.Append(Record({"JOSEPH", "", "NYC"}));
  d.Append(Record({"JOE", "JOEY", ""}));
  return d;
}

TEST(MergeStrategyTest, NamesResolve) {
  EXPECT_TRUE(MergeStrategyFromName("longest").ok());
  EXPECT_TRUE(MergeStrategyFromName("most_frequent").ok());
  EXPECT_TRUE(MergeStrategyFromName("first_seen").ok());
  EXPECT_TRUE(MergeStrategyFromName("non_empty_first").ok());
  EXPECT_TRUE(MergeStrategyFromName("concat_distinct").ok());
  EXPECT_FALSE(MergeStrategyFromName("bogus").ok());
}

TEST(PurgePolicyTest, DefaultIsLongest) {
  PurgePolicy policy;
  Dataset d = ClassDataset();
  Record merged = policy.MergeClass(d, {0, 1, 2});
  EXPECT_EQ(merged.field(0), "JOSEPH");
  EXPECT_EQ(merged.field(1), "JOEY");
  EXPECT_EQ(merged.field(2), "NYC");
}

TEST(PurgePolicyTest, MostFrequentVotes) {
  PurgePolicy policy;
  policy.Set(0, MergeStrategy::kMostFrequent);
  Dataset d(Schema({"name"}));
  d.Append(Record({"SMITH"}));
  d.Append(Record({"SMYTH"}));
  d.Append(Record({"SMITH"}));
  d.Append(Record({""}));
  Record merged = policy.MergeClass(d, {0, 1, 2, 3});
  EXPECT_EQ(merged.field(0), "SMITH");
}

TEST(PurgePolicyTest, MostFrequentTieGoesToFirstSeen) {
  PurgePolicy policy;
  policy.Set(0, MergeStrategy::kMostFrequent);
  Dataset d(Schema({"name"}));
  d.Append(Record({"B"}));
  d.Append(Record({"A"}));
  Record merged = policy.MergeClass(d, {0, 1});
  EXPECT_EQ(merged.field(0), "B");
}

TEST(PurgePolicyTest, FirstSeenAndNonEmptyFirst) {
  PurgePolicy policy;
  policy.Set(0, MergeStrategy::kFirstSeen);
  policy.Set(1, MergeStrategy::kNonEmptyFirst);
  Dataset d(Schema({"a", "b"}));
  d.Append(Record({"", ""}));
  d.Append(Record({"x", "y"}));
  Record merged = policy.MergeClass(d, {0, 1});
  EXPECT_EQ(merged.field(0), "");   // First seen, even if empty.
  EXPECT_EQ(merged.field(1), "y");  // First non-empty.
}

TEST(PurgePolicyTest, ConcatDistinctKeepsAliases) {
  PurgePolicy policy;
  policy.Set(0, MergeStrategy::kConcatDistinct);
  Dataset d(Schema({"name"}));
  d.Append(Record({"SMITH"}));
  d.Append(Record({"JONES"}));
  d.Append(Record({"SMITH"}));
  d.Append(Record({""}));
  Record merged = policy.MergeClass(d, {0, 1, 2, 3});
  EXPECT_EQ(merged.field(0), "SMITH / JONES");
}

TEST(PurgePolicyTest, PurgeGroupsByComponent) {
  PurgePolicy policy;
  Dataset d(Schema({"v"}));
  d.Append(Record({"a"}));
  d.Append(Record({"bb"}));
  d.Append(Record({"c"}));
  Dataset purged = policy.Purge(d, {5, 5, 9});
  ASSERT_EQ(purged.size(), 2u);
  EXPECT_EQ(purged.record(0).field(0), "bb");  // Longest of {a, bb}.
  EXPECT_EQ(purged.record(1).field(0), "c");
}

TEST(PurgePolicyDslTest, MergeDirectivesCompile) {
  auto program = RuleProgram::Compile(
      "merge first_name: prefer most_frequent\n"
      "merge last_name: prefer concat_distinct\n"
      "rule same-ssn: if r1.ssn == r2.ssn then match\n",
      employee::MakeSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const PurgePolicy& policy = program->purge_policy();
  EXPECT_EQ(policy.strategy_for(employee::kFirstName),
            MergeStrategy::kMostFrequent);
  EXPECT_EQ(policy.strategy_for(employee::kLastName),
            MergeStrategy::kConcatDistinct);
  EXPECT_EQ(policy.strategy_for(employee::kCity), MergeStrategy::kLongest);
}

TEST(PurgePolicyDslTest, DirectiveErrors) {
  Schema schema = employee::MakeSchema();
  EXPECT_FALSE(RuleProgram::Compile(
                   "merge nope: prefer longest\n"
                   "rule r: if r1.ssn == r2.ssn then match",
                   schema)
                   .ok());
  EXPECT_FALSE(RuleProgram::Compile(
                   "merge city: prefer sideways\n"
                   "rule r: if r1.ssn == r2.ssn then match",
                   schema)
                   .ok());
  EXPECT_FALSE(RuleProgram::Compile(
                   "merge city prefer longest\n"
                   "rule r: if r1.ssn == r2.ssn then match",
                   schema)
                   .ok());
  // A program with only directives and no rules is rejected.
  EXPECT_FALSE(
      RuleProgram::Compile("merge city: prefer longest\n", schema).ok());
}

}  // namespace
}  // namespace mergepurge
