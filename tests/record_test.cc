#include <gtest/gtest.h>

#include "record/dataset.h"
#include "record/record.h"
#include "record/schema.h"

namespace mergepurge {
namespace {

TEST(SchemaTest, FieldLookup) {
  Schema schema({"a", "b", "c"});
  EXPECT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.FieldIndex("b"), 1u);
  EXPECT_EQ(schema.FieldIndex("missing"), kInvalidField);
}

TEST(SchemaTest, RequireFieldReportsError) {
  Schema schema({"a"});
  Result<FieldId> hit = schema.RequireField("a");
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, 0u);
  Result<FieldId> miss = schema.RequireField("zz");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, EmployeeSchemaLayout) {
  Schema schema = employee::MakeSchema();
  EXPECT_EQ(schema.num_fields(), employee::kNumFields);
  EXPECT_EQ(schema.FieldIndex("ssn"), employee::kSsn);
  EXPECT_EQ(schema.FieldIndex("first_name"), employee::kFirstName);
  EXPECT_EQ(schema.FieldIndex("last_name"), employee::kLastName);
  EXPECT_EQ(schema.FieldIndex("zip"), employee::kZip);
}

TEST(RecordTest, FieldAccessAndGrowth) {
  Record r;
  EXPECT_EQ(r.field(3), "");
  r.set_field(3, "x");
  EXPECT_EQ(r.num_fields(), 4u);
  EXPECT_EQ(r.field(3), "x");
  EXPECT_EQ(r.field(0), "");
  EXPECT_EQ(r.field(99), "");  // Out of range reads as empty.
}

TEST(RecordTest, EqualityIsFieldwise) {
  Record a({"1", "2"});
  Record b({"1", "2"});
  Record c({"1", "3"});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(RecordTest, DebugStringJoinsWithPipes) {
  Record r({"JOHN", "", "SMITH"});
  EXPECT_EQ(r.DebugString(), "JOHN||SMITH");
}

TEST(DatasetTest, AppendAssignsSequentialTupleIds) {
  Dataset d(Schema({"f"}));
  EXPECT_EQ(d.Append(Record({"a"})), 0u);
  EXPECT_EQ(d.Append(Record({"b"})), 1u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.record(1).field(0), "b");
}

TEST(DatasetTest, ConcatenateMatchingSchemas) {
  Dataset a(Schema({"f"}));
  a.Append(Record({"1"}));
  Dataset b(Schema({"f"}));
  b.Append(Record({"2"}));
  b.Append(Record({"3"}));
  ASSERT_TRUE(a.Concatenate(b).ok());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.record(2).field(0), "3");
}

TEST(DatasetTest, ConcatenateRejectsSchemaMismatch) {
  Dataset a(Schema({"f"}));
  Dataset b(Schema({"g"}));
  Status s = a.Concatenate(b);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, MutableRecordEditsInPlace) {
  Dataset d(Schema({"f"}));
  d.Append(Record({"old"}));
  d.mutable_record(0).set_field(0, "new");
  EXPECT_EQ(d.record(0).field(0), "new");
}

}  // namespace
}  // namespace mergepurge
