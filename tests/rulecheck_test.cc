// Tests for the rule-theory static analyzer (rules/analysis/): one golden
// seeded-defect program per lint (asserting the lint id AND the reported
// source line), suppression comments, report rendering, and property tests
// tying the analyzer's verdicts to the interpreter's actual behavior.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "record/record.h"
#include "rules/analysis/analyzer.h"
#include "rules/ast_util.h"
#include "rules/employee_rules_text.h"
#include "rules/employee_theory.h"
#include "rules/parser.h"
#include "rules/rule_program.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mergepurge {
namespace {

// Finds the first diagnostic with `id`; fails the test when absent.
const Diagnostic* FindDiagnostic(const AnalysisReport& report,
                                 std::string_view id) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

size_t CountDiagnostics(const AnalysisReport& report, std::string_view id) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.id == id) ++n;
  }
  return n;
}

// --- One golden seeded-defect program per lint. -----------------------------

TEST(RulecheckLints, BlankMergeFlagsRuleSatisfiedByEmptyRecords) {
  const std::string source =
      "rule guarded:\n"                                            // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"              // line 2
      "  then match\n"                                             // line 3
      "\n"                                                         // line 4
      "rule blank-trap:\n"                                         // line 5
      "  if similarity(r1.city, r2.city) >= 0.9\n"                 // line 6
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "blank-merge");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kError);
  EXPECT_EQ(d->line, 5);
  EXPECT_EQ(d->rule_name, "blank-trap");
  EXPECT_EQ(CountDiagnostics(report, "blank-merge"), 1u)
      << "the guarded rule must not be flagged";
  EXPECT_TRUE(report.HasErrors());
}

TEST(RulecheckLints, AsymmetricRuleFlagsOneSidedGuard) {
  const std::string source =
      "rule one-sided:\n"                                          // line 1
      "  if similarity(r1.last_name, r2.last_name) >= 0.8\n"
      "  and not empty(r1.last_name)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "asymmetric-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 1);
  EXPECT_EQ(d->rule_name, "one-sided");
}

// The ubiquitous `r1.f == r2.f and not empty(r1.f)` idiom IS symmetric
// (the equality makes the one-sided guard congruent to its mirror) and
// must not be flagged.
TEST(RulecheckLints, EqualityGuardedRuleIsSymmetric) {
  const std::string source =
      "rule guarded:\n"
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"
      "  and similarity(r1.city, r2.city) >= 0.5\n"
      "  then match\n"
      "rule expr-mirror:\n"
      "  if digits(r1.zip) == digits(r2.zip)\n"
      "  and not empty(digits(r1.zip))\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  EXPECT_EQ(CountDiagnostics(report, "asymmetric-rule"), 0u);
}

TEST(RulecheckLints, UnsatisfiableConditionFlagsThresholdAboveRange) {
  const std::string source =
      "rule dead-threshold:\n"                                     // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"              // line 2
      "  and similarity(r1.city, r2.city) > 1.5\n"                 // line 3
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "unsatisfiable-condition");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 3);
  EXPECT_EQ(d->rule_name, "dead-threshold");
}

TEST(RulecheckLints, TautologicalConditionFlagsVacuousThreshold) {
  const std::string source =
      "rule vacuous:\n"                                            // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"              // line 2
      "  and edit_distance(r1.city, r2.city) >= 0\n"               // line 3
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "tautological-condition");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
  EXPECT_EQ(d->rule_name, "vacuous");
}

TEST(RulecheckLints, SelfComparisonIsTautological) {
  const std::string source =
      "rule self-compare:\n"                                       // line 1
      "  if r1.ssn == r1.ssn\n"                                    // line 2
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "tautological-condition");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 2);
  // `r1.f == r1.f` also holds on blank records, so the rule is a blank
  // trap too.
  EXPECT_NE(FindDiagnostic(report, "blank-merge"), nullptr);
}

TEST(RulecheckLints, ConstantComparisonFlagsRecordFreeCondition) {
  const std::string source =
      "rule constant:\n"                                           // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"              // line 2
      "  and length(\"abc\") == 3\n"                               // line 3
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "constant-comparison");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 3);
  EXPECT_NE(d->message.find("always true"), std::string::npos);
}

TEST(RulecheckLints, DuplicateRuleFlagsReorderedAndFlippedCopy) {
  const std::string source =
      "rule original:\n"                                           // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"
      "  and similarity(r1.city, r2.city) >= 0.8\n"
      "  then match\n"
      "\n"
      "rule sneaky-copy:\n"                                        // line 6
      "  if 0.8 <= similarity(r2.city, r1.city)\n"
      "  and not empty(r2.ssn) and r2.ssn == r1.ssn\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "duplicate-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->rule_name, "sneaky-copy");
  EXPECT_NE(d->message.find("original"), std::string::npos);
}

TEST(RulecheckLints, SubsumedRuleFlagsStrictlyTighterThreshold) {
  const std::string source =
      "rule loose:\n"                                              // line 1
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.7\n"
      "  then match\n"
      "\n"
      "rule tight:\n"                                              // line 6
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.9\n"
      "  and r1.state == r2.state\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "subsumed-rule");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->rule_name, "tight");
  EXPECT_NE(d->message.find("loose"), std::string::npos);
}

TEST(RulecheckLints, LooserLaterRuleIsNotSubsumed) {
  const std::string source =
      "rule tight:\n"
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.9\n"
      "  then match\n"
      "\n"
      "rule loose:\n"
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.7\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  EXPECT_EQ(CountDiagnostics(report, "subsumed-rule"), 0u)
      << "the later rule matches MORE pairs and is load-bearing";
}

TEST(RulecheckLints, DuplicateRuleNameFlagsReusedName) {
  const std::string source =
      "rule twin:\n"                                               // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"
      "  then match\n"
      "rule twin:\n"                                               // line 4
      "  if r1.zip == r2.zip and not empty(r1.zip)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "duplicate-rule-name");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 4);
}

TEST(RulecheckLints, DuplicateMergeDirectiveFlagsSecondDirective) {
  const std::string source =
      "rule r:\n"                                                  // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"
      "  then match\n"
      "merge city: prefer longest\n"                               // line 4
      "merge city: prefer non_empty_first\n";                      // line 5
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "duplicate-merge-directive");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->line, 5);
}

TEST(RulecheckLints, UnknownMergeStrategyIsAnError) {
  const std::string source =
      "rule r:\n"                                                  // line 1
      "  if r1.ssn == r2.ssn and not empty(r1.ssn)\n"
      "  then match\n"
      "merge city: prefer telepathy\n";                            // line 4
  AnalysisReport report = AnalyzeRuleSource(source);
  const Diagnostic* d = FindDiagnostic(report, "unknown-merge-strategy");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kError);
  EXPECT_EQ(d->line, 4);
  EXPECT_TRUE(report.HasErrors());
}

TEST(RulecheckLints, ParseFailureYieldsParseErrorDiagnostic) {
  AnalysisReport report = AnalyzeRuleSource("rule broken: if then match");
  const Diagnostic* d = FindDiagnostic(report, "parse-error");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kError);
  EXPECT_TRUE(report.HasErrors());
}

// --- Suppressions. ----------------------------------------------------------

TEST(RulecheckSuppressions, AllowCommentSilencesFindingOnNextRule) {
  const std::string source =
      "# rulecheck: allow(blank-merge)\n"
      "rule intentional:\n"
      "  if similarity(r1.city, r2.city) >= 0.9\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  EXPECT_EQ(CountDiagnostics(report, "blank-merge"), 0u);
  EXPECT_EQ(report.suppressed_count(), 1u);
  EXPECT_FALSE(report.HasErrors());
}

TEST(RulecheckSuppressions, AllowCommentIsIdSpecific) {
  const std::string source =
      "# rulecheck: allow(asymmetric-rule)\n"
      "rule intentional:\n"
      "  if similarity(r1.city, r2.city) >= 0.9\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  // The comment allows a different lint: blank-merge must still fire.
  EXPECT_EQ(CountDiagnostics(report, "blank-merge"), 1u);
}

TEST(RulecheckSuppressions, ExtractSuppressionsParsesIdsAndTargetLine) {
  std::map<int, std::vector<std::string>> allows = ExtractSuppressions(
      "# rulecheck: allow(blank-merge, asymmetric-rule)\n"  // line 1
      "\n"                                                  // line 2
      "# plain comment\n"                                   // line 3
      "rule r:\n"                                           // line 4
      "  if r1.a == r2.a\n"
      "  then match\n");
  ASSERT_EQ(allows.size(), 1u);
  ASSERT_EQ(allows.count(4), 1u);
  EXPECT_EQ(allows[4],
            (std::vector<std::string>{"blank-merge", "asymmetric-rule"}));
}

// --- window-coverage: rules no sort pass can window. ------------------------

AnalyzerOptions WithPasses(std::vector<PassKeyFields> passes) {
  AnalyzerOptions options;
  options.passes = std::move(passes);
  return options;
}

TEST(RulecheckWindowCoverage, FlagsRuleTyingNoKeyedField) {
  const std::string source =
      "rule covered:\n"                                            // line 1
      "  if r1.last_name == r2.last_name\n"                        // line 2
      "  and not empty(r1.last_name) and not empty(r2.last_name)\n"
      "  then match\n"
      "\n"
      "rule uncovered:\n"                                          // line 6
      "  if r1.zip == r2.zip\n"
      "  and not empty(r1.zip) and not empty(r2.zip)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(
      source,
      WithPasses({{"last-name", {"last_name", "first_name", "ssn"}}}));
  const Diagnostic* d = FindDiagnostic(report, "window-coverage");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 6);
  EXPECT_EQ(d->rule_name, "uncovered");
  EXPECT_NE(d->message.find("only ties zip"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("last-name sorts on last_name+first_name+ssn"),
            std::string::npos)
      << d->message;
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 1u)
      << "the covered rule must not be flagged";
}

TEST(RulecheckWindowCoverage, SimilarityTiesItsFieldAcrossAnyPass) {
  // A two-sided fuzzy read counts as a tie, and coverage by ANY pass —
  // not the first — suffices.
  const std::string source =
      "rule addr:\n"
      "  if similarity(r1.address, r2.address) >= 0.75\n"
      "  and not empty(r1.address) and not empty(r2.address)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(
      source, WithPasses({{"last-name", {"last_name", "ssn"}},
                          {"address", {"address", "city"}}}));
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 0u);
}

TEST(RulecheckWindowCoverage, DisjunctionNeedsEveryBranchCovered) {
  // Either branch alone may satisfy the rule, so a pair is only
  // guaranteed near when BOTH branches tie a keyed field: the or-branch
  // on zip breaks the last_name tie's coverage.
  const std::string source =
      "rule either:\n"
      "  if (r1.last_name == r2.last_name and not empty(r1.last_name)\n"
      "      and not empty(r2.last_name))\n"
      "  or (r1.zip == r2.zip and not empty(r1.zip)\n"
      "      and not empty(r2.zip))\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(
      source, WithPasses({{"last-name", {"last_name", "ssn"}}}));
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 1u);
}

TEST(RulecheckWindowCoverage, CrossFieldAndNegatedReadsTieNothing) {
  // r1.zip vs r2.city reads both records but ties no common field, and a
  // negated equality never ties: both rules are uncoverable.
  const std::string source =
      "rule crossed:\n"                                            // line 1
      "  if r1.zip == r2.city and not empty(r1.zip)\n"
      "  then match\n"
      "\n"
      "rule negated:\n"                                            // line 5
      "  if not (r1.zip != r2.zip) and not empty(r1.zip)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(
      source, WithPasses({{"zip", {"zip", "city"}}}));
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 2u);
  const Diagnostic* d = FindDiagnostic(report, "window-coverage");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("ties no field"), std::string::npos)
      << d->message;
}

TEST(RulecheckWindowCoverage, NoConfiguredPassesDisablesTheLint) {
  const std::string source =
      "rule uncovered:\n"
      "  if r1.zip == r2.zip and not empty(r1.zip) and not empty(r2.zip)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 0u);
}

TEST(RulecheckWindowCoverage, AllowCommentSilencesTheFinding) {
  const std::string source =
      "# rulecheck: allow(window-coverage)\n"
      "rule uncovered:\n"
      "  if r1.zip == r2.zip and not empty(r1.zip) and not empty(r2.zip)\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(
      source, WithPasses({{"last-name", {"last_name"}}}));
  EXPECT_EQ(CountDiagnostics(report, "window-coverage"), 0u);
  EXPECT_EQ(report.suppressed_count(), 1u);
}

// --- Report rendering. ------------------------------------------------------

TEST(RulecheckReport, TextRenderingContainsLocationIdAndHint) {
  AnalysisReport report;
  report.SetProgramShape(3, 1);
  report.Add({"blank-merge", LintSeverity::kError, 12, "bad-rule",
              "the message", "the hint"});
  std::string text = report.ToText("theory.rules");
  EXPECT_NE(text.find("theory.rules:12: error: [blank-merge] "
                      "rule 'bad-rule': the message"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hint: the hint"), std::string::npos);
  EXPECT_NE(text.find("1 error(s)"), std::string::npos);
}

TEST(RulecheckReport, JsonRenderingRoundTrips) {
  AnalysisReport report;
  report.SetProgramShape(2, 0);
  report.Add({"asymmetric-rule", LintSeverity::kWarning, 7, "r",
              "message", "hint"});
  report.AddSuppressed();
  Result<JsonValue> parsed =
      JsonValue::Parse(report.ToJson("t.rules").Dump(2));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("outcome"), nullptr);
  EXPECT_NE(parsed->Find("counts"), nullptr);
  const JsonValue* diagnostics = parsed->Find("diagnostics");
  ASSERT_NE(diagnostics, nullptr);
  ASSERT_TRUE(diagnostics->is_array());
}

// --- The shipped theories are lint-clean. -----------------------------------

TEST(RulecheckTheories, BuiltinEmployeeTheoryIsCleanAtWerror) {
  // Passes mirror keys/standard_keys.cc, so window-coverage runs too.
  AnalysisReport report = AnalyzeRuleSource(
      EmployeeRulesText(),
      WithPasses({{"last-name", {"last_name", "first_name", "ssn"}},
                  {"first-name", {"first_name", "last_name", "ssn"}},
                  {"address", {"address", "last_name", "city"}}}));
  for (const Diagnostic& d : report.diagnostics()) {
    ADD_FAILURE() << d.id << " at line " << d.line << ": " << d.message;
  }
  EXPECT_FALSE(report.HasErrors());
  EXPECT_EQ(report.CountAtSeverity(LintSeverity::kWarning), 0u);
  // identical-records carries an explicit allow(blank-merge).
  EXPECT_EQ(report.suppressed_count(), 1u);
  EXPECT_EQ(report.rule_count(), 26u);
}

// --- Property tests: the analyzer's verdicts match the interpreter. ---------

// Random-but-valid rule programs assembled from condition templates over
// the employee schema.
std::string RandomProgram(Rng* rng) {
  static constexpr const char* kFields[] = {"ssn", "first_name", "last_name",
                                            "address", "city", "zip"};
  std::string source;
  size_t num_rules = 1 + rng->NextBounded(4);
  for (size_t r = 0; r < num_rules; ++r) {
    source += StringPrintf("rule r%zu:\n  if ", r);
    size_t num_conjuncts = 1 + rng->NextBounded(2);
    for (size_t c = 0; c < num_conjuncts; ++c) {
      if (c > 0) source += "\n  and ";
      const char* field = kFields[rng->NextBounded(6)];
      switch (rng->NextBounded(5)) {
        case 0:
          source += StringPrintf("r1.%s == r2.%s and not empty(r1.%s)",
                                 field, field, field);
          break;
        case 1:
          source += StringPrintf(
              "not empty(r1.%s) and not empty(r2.%s) "
              "and similarity(r1.%s, r2.%s) >= 0.%d",
              field, field, field, field,
              static_cast<int>(5 + rng->NextBounded(5)));
          break;
        case 2:
          source += StringPrintf("sounds_like(r1.%s, r2.%s)", field, field);
          break;
        case 3:
          source += StringPrintf(
              "not empty(r1.%s) and edit_distance(r1.%s, r2.%s) <= %d",
              field, field, field,
              static_cast<int>(1 + rng->NextBounded(3)));
          break;
        default:
          // Deliberately unguarded: a blank trap (similarity("", "") is
          // 1.0), so the blank-merge property sees both verdicts.
          source += StringPrintf("similarity(r1.%s, r2.%s) >= 0.%d", field,
                                 field,
                                 static_cast<int>(5 + rng->NextBounded(5)));
          break;
      }
    }
    source += "\n  then match\n\n";
  }
  return source;
}

Record RandomRecord(Rng* rng) {
  static constexpr const char* kNames[] = {"SMITH", "SMYTH", "JONES", ""};
  static constexpr const char* kCities[] = {"SPRINGFIELD", "SHELBYVILLE",
                                            ""};
  Record record;
  record.set_field(employee::kSsn,
                   rng->NextBounded(2) ? "123456789" : "987654321");
  record.set_field(employee::kFirstName, kNames[rng->NextBounded(4)]);
  record.set_field(employee::kLastName, kNames[rng->NextBounded(4)]);
  record.set_field(employee::kCity, kCities[rng->NextBounded(3)]);
  record.set_field(employee::kZip, rng->NextBounded(2) ? "11111" : "");
  return record;
}

// A program with no findings must compile; a program with no blank-merge
// finding must NOT match two all-blank records, and one with a blank-merge
// finding must. This pins the analyzer's constant evaluation to the real
// interpreter.
TEST(RulecheckProperties, BlankVerdictMatchesInterpreterOnBlankRecords) {
  Rng rng(20260805);
  Schema schema = employee::MakeSchema();
  const Record blank;
  for (int trial = 0; trial < 200; ++trial) {
    std::string source = RandomProgram(&rng);
    AnalysisReport report = AnalyzeRuleSource(source);
    ASSERT_EQ(FindDiagnostic(report, "parse-error"), nullptr) << source;
    Result<RuleProgram> program = RuleProgram::Compile(source, schema);
    ASSERT_TRUE(program.ok())
        << program.status().ToString() << "\n" << source;
    const bool flagged = CountDiagnostics(report, "blank-merge") > 0;
    EXPECT_EQ(program->Matches(blank, blank), flagged) << source;
  }
}

// Programs the analyzer calls symmetric must behave symmetrically.
TEST(RulecheckProperties, SymmetryVerdictMatchesInterpreter) {
  Rng rng(20260806);
  Schema schema = employee::MakeSchema();
  for (int trial = 0; trial < 100; ++trial) {
    std::string source = RandomProgram(&rng);
    AnalysisReport report = AnalyzeRuleSource(source);
    if (CountDiagnostics(report, "asymmetric-rule") > 0) continue;
    Result<RuleProgram> program = RuleProgram::Compile(source, schema);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    for (int pair = 0; pair < 20; ++pair) {
      Record a = RandomRecord(&rng);
      Record b = RandomRecord(&rng);
      EXPECT_EQ(program->Matches(a, b), program->Matches(b, a))
          << source << "\n" << a.DebugString() << "\n" << b.DebugString();
    }
  }
}

// A rule the analyzer calls subsumed must never change the match verdict:
// deleting it leaves Matches() identical on random records.
TEST(RulecheckProperties, SubsumedRulesAreBehaviorallyRedundant) {
  const std::string source =
      "rule loose:\n"
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.5\n"
      "  then match\n"
      "rule tight:\n"
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.9\n"
      "  then match\n";
  const std::string without_tight =
      "rule loose:\n"
      "  if not empty(r1.city) and not empty(r2.city)\n"
      "  and similarity(r1.city, r2.city) >= 0.5\n"
      "  then match\n";
  AnalysisReport report = AnalyzeRuleSource(source);
  ASSERT_EQ(CountDiagnostics(report, "subsumed-rule"), 1u);
  Schema schema = employee::MakeSchema();
  Result<RuleProgram> full = RuleProgram::Compile(source, schema);
  Result<RuleProgram> pruned = RuleProgram::Compile(without_tight, schema);
  ASSERT_TRUE(full.ok() && pruned.ok());
  Rng rng(7);
  for (int pair = 0; pair < 200; ++pair) {
    Record a = RandomRecord(&rng);
    Record b = RandomRecord(&rng);
    EXPECT_EQ(full->Matches(a, b), pruned->Matches(a, b))
        << a.DebugString() << " vs " << b.DebugString();
  }
}

// --- AST utility invariants used by the analyzer. ---------------------------

TEST(RulecheckAstUtil, CanonicalPrintIsOrderAndDirectionInvariant) {
  auto parse = [](const std::string& condition) {
    Result<RuleProgramAst> ast = ParseRuleProgram(
        "rule r:\n  if " + condition + "\n  then match\n");
    EXPECT_TRUE(ast.ok()) << ast.status().ToString();
    return std::move(*ast);
  };
  RuleProgramAst a =
      parse("r1.ssn == r2.ssn and similarity(r1.city, r2.city) >= 0.8");
  RuleProgramAst b =
      parse("0.8 <= similarity(r2.city, r1.city) and r2.ssn == r1.ssn");
  EXPECT_EQ(CanonicalPrint(*a.rules[0].condition),
            CanonicalPrint(*b.rules[0].condition));
  RuleProgramAst c =
      parse("r1.ssn == r2.ssn and similarity(r1.city, r2.city) >= 0.9");
  EXPECT_NE(CanonicalPrint(*a.rules[0].condition),
            CanonicalPrint(*c.rules[0].condition));
}

TEST(RulecheckAstUtil, SwapRecordIndicesIsAnInvolution) {
  Result<RuleProgramAst> ast = ParseRuleProgram(
      "rule r:\n"
      "  if similarity(r1.city, r2.city) >= 0.8 and not empty(r1.city)\n"
      "  then match\n");
  ASSERT_TRUE(ast.ok());
  const BoolExpr& condition = *ast->rules[0].condition;
  std::unique_ptr<BoolExpr> swapped = CloneBool(condition);
  SwapRecordIndices(swapped.get());
  std::unique_ptr<BoolExpr> twice = CloneBool(*swapped);
  SwapRecordIndices(twice.get());
  EXPECT_EQ(CanonicalPrint(condition), CanonicalPrint(*twice));
}

}  // namespace
}  // namespace mergepurge
