// Property test: the declarative rule program (employee_rules_text) is a
// faithful mirror of the hand-coded EmployeeTheory — the paper's "OPS5
// program recoded in C" relationship, §2.3. Rules 0..24 must agree exactly
// (same fired rule index); rule 25 (aggregate-similarity) is approximated
// in the DSL, so disagreements involving it on either side are tolerated.

#include <unordered_map>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "rules/employee_rules_text.h"
#include "rules/employee_theory.h"
#include "rules/rule_program.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

constexpr int kAggregateRule = 25;

class RulesEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RulesEquivalenceTest, DslMirrorsCompiledTheory) {
  auto program = RuleProgram::Compile(EmployeeRulesText(),
                                      employee::MakeSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->num_rules(), EmployeeTheory::kNumRules);
  for (size_t i = 0; i < program->num_rules(); ++i) {
    EXPECT_EQ(program->rule_name(i), EmployeeTheory::RuleName(i))
        << "rule order mismatch at " << i;
  }

  EmployeeTheory theory;  // Default options = the DSL's thresholds.

  GeneratorConfig config;
  config.num_records = 600;
  config.duplicate_selection_rate = 0.6;
  config.max_duplicates_per_record = 3;
  config.seed = GetParam();
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  ConditionEmployeeDataset(&db->dataset);

  // Compare on pairs likely to exercise the rules: true duplicate pairs
  // plus pseudo-random non-duplicate pairs.
  Rng rng(GetParam() * 7919 + 1);
  size_t checked = 0;
  size_t n = db->dataset.size();
  for (size_t trial = 0; trial < 6000; ++trial) {
    TupleId a;
    TupleId b;
    if (trial % 2 == 0) {
      // Random pair.
      a = static_cast<TupleId>(rng.NextBounded(n));
      b = static_cast<TupleId>(rng.NextBounded(n));
    } else {
      // Nearby pair (shuffled dataset: still mostly non-dups, but with
      // a decent share of true duplicates after sorting... use origin).
      a = static_cast<TupleId>(rng.NextBounded(n));
      b = static_cast<TupleId>((a + 1) % n);
    }
    if (a == b) continue;

    int theory_rule =
        theory.MatchingRule(db->dataset.record(a), db->dataset.record(b));
    int dsl_rule =
        program->MatchingRule(db->dataset.record(a), db->dataset.record(b));
    ++checked;

    if (theory_rule == kAggregateRule || dsl_rule == kAggregateRule) {
      continue;  // The approximated rule may disagree.
    }
    EXPECT_EQ(theory_rule, dsl_rule)
        << "records:\n  " << db->dataset.record(a).DebugString() << "\n  "
        << db->dataset.record(b).DebugString();
    if (theory_rule != dsl_rule) break;  // One detailed failure is enough.
  }
  EXPECT_GT(checked, 1000u);

  // Also compare on guaranteed true-duplicate pairs: group by origin.
  std::unordered_map<uint32_t, TupleId> first_of_origin;
  size_t dup_checked = 0;
  for (size_t t = 0; t < n && dup_checked < 2000; ++t) {
    uint32_t origin = db->truth.origin_of(static_cast<TupleId>(t));
    auto [it, inserted] =
        first_of_origin.emplace(origin, static_cast<TupleId>(t));
    if (inserted) continue;
    TupleId a = it->second;
    TupleId b = static_cast<TupleId>(t);
    int theory_rule =
        theory.MatchingRule(db->dataset.record(a), db->dataset.record(b));
    int dsl_rule =
        program->MatchingRule(db->dataset.record(a), db->dataset.record(b));
    ++dup_checked;
    if (theory_rule == kAggregateRule || dsl_rule == kAggregateRule) {
      continue;
    }
    ASSERT_EQ(theory_rule, dsl_rule)
        << "records:\n  " << db->dataset.record(a).DebugString() << "\n  "
        << db->dataset.record(b).DebugString();
  }
  EXPECT_GT(dup_checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulesEquivalenceTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace mergepurge
