#include <set>
#include <string>

#include <gtest/gtest.h>

#include "rules/employee_theory.h"
#include "rules/lexer.h"
#include "rules/parser.h"
#include "rules/rule_program.h"

namespace mergepurge {
namespace {

// --- Lexer. ---

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("rule x: if a >= 0.8 then match");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 10u);  // 9 tokens + end.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kColon);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kOp);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[6].number, 0.8);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, CommentsAndStrings) {
  auto tokens = Tokenize("# comment\n\"str,ing\" ident-with-dash");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "str,ing");
  EXPECT_EQ((*tokens)[1].text, "ident-with-dash");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());       // Bare '=' invalid.
  EXPECT_FALSE(Tokenize("a @ b").ok());       // Unknown character.
}

TEST(LexerTest, LineNumbersInErrors) {
  auto result = Tokenize("ok tokens\nbad @");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

// --- Parser. ---

TEST(ParserTest, MinimalRule) {
  auto ast = ParseRuleProgram(
      "rule r1: if r1.ssn == r2.ssn then match");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  ASSERT_EQ(ast->rules.size(), 1u);
  EXPECT_EQ(ast->rules[0].name, "r1");
}

TEST(ParserTest, BooleanStructure) {
  auto ast = ParseRuleProgram(
      "rule r: if (a(r1.ssn) or not b(r2.ssn)) and c(r1.zip) then match");
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  const BoolExpr& cond = *ast->rules[0].condition;
  EXPECT_EQ(cond.kind, BoolKind::kAnd);
  ASSERT_EQ(cond.children.size(), 2u);
  EXPECT_EQ(cond.children[0]->kind, BoolKind::kOr);
  EXPECT_EQ(cond.children[0]->children[1]->kind, BoolKind::kNot);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRuleProgram("").ok());
  EXPECT_FALSE(ParseRuleProgram("rule : if x then match").ok());
  EXPECT_FALSE(ParseRuleProgram("rule r if x then match").ok());
  EXPECT_FALSE(ParseRuleProgram("rule r: if then match").ok());
  EXPECT_FALSE(ParseRuleProgram("rule r: if f(x then match").ok());
  EXPECT_FALSE(
      ParseRuleProgram("rule r: if r1.ssn == r2.ssn then nomatch").ok());
  EXPECT_FALSE(ParseRuleProgram("rule r: if r1. == r2.x then match").ok());
}

// --- Compilation and evaluation. ---

Record Employee(const std::string& ssn, const std::string& first,
                const std::string& last, const std::string& address) {
  Record r;
  r.set_field(employee::kSsn, ssn);
  r.set_field(employee::kFirstName, first);
  r.set_field(employee::kInitial, "");
  r.set_field(employee::kLastName, last);
  r.set_field(employee::kAddress, address);
  r.set_field(employee::kApartment, "");
  r.set_field(employee::kCity, "NEW YORK");
  r.set_field(employee::kState, "NY");
  r.set_field(employee::kZip, "10027");
  return r;
}

TEST(RuleProgramTest, CompileResolvesFields) {
  auto program = RuleProgram::Compile(
      "rule r: if r1.ssn == r2.ssn then match", employee::MakeSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->num_rules(), 1u);
  EXPECT_EQ(program->rule_name(0), "r");
}

TEST(RuleProgramTest, CompileErrors) {
  Schema schema = employee::MakeSchema();
  // Unknown field.
  EXPECT_FALSE(
      RuleProgram::Compile("rule r: if r1.nope == r2.ssn then match",
                           schema)
          .ok());
  // Unknown function.
  EXPECT_FALSE(
      RuleProgram::Compile("rule r: if zap(r1.ssn) then match", schema)
          .ok());
  // Wrong arity.
  EXPECT_FALSE(
      RuleProgram::Compile("rule r: if empty(r1.ssn, r2.ssn) then match",
                           schema)
          .ok());
  // Type mismatch in comparison.
  EXPECT_FALSE(
      RuleProgram::Compile("rule r: if r1.ssn == 5 then match", schema)
          .ok());
  // Bare non-boolean condition.
  EXPECT_FALSE(
      RuleProgram::Compile("rule r: if r1.ssn then match", schema).ok());
  // Ordering on booleans.
  EXPECT_FALSE(RuleProgram::Compile(
                   "rule r: if empty(r1.ssn) <= empty(r2.ssn) then match",
                   schema)
                   .ok());
  // Wrong argument type.
  EXPECT_FALSE(RuleProgram::Compile(
                   "rule r: if prefix(r1.ssn, r2.ssn) == r1.ssn then match",
                   schema)
                   .ok());
}

TEST(RuleProgramTest, EvaluatesSimpleEquality) {
  auto program = RuleProgram::Compile(
      "rule same-ssn: if r1.ssn == r2.ssn then match",
      employee::MakeSchema());
  ASSERT_TRUE(program.ok());
  Record a = Employee("111", "JOHN", "SMITH", "1 MAIN ST");
  Record b = Employee("111", "MARY", "JONES", "2 OAK AVE");
  Record c = Employee("222", "JOHN", "SMITH", "1 MAIN ST");
  EXPECT_TRUE(program->Matches(a, b));
  EXPECT_FALSE(program->Matches(a, c));
}

TEST(RuleProgramTest, PaperExampleRule) {
  auto program = RuleProgram::Compile(
      "rule paper: if r1.last_name == r2.last_name\n"
      "  and similarity(r1.first_name, r2.first_name) >= 0.7\n"
      "  and r1.address == r2.address then match",
      employee::MakeSchema());
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Record a = Employee("1", "MICHAEL", "SMITH", "1 MAIN ST");
  Record b = Employee("2", "MICHAL", "SMITH", "1 MAIN ST");
  Record c = Employee("3", "GEORGE", "SMITH", "1 MAIN ST");
  EXPECT_TRUE(program->Matches(a, b));
  EXPECT_FALSE(program->Matches(a, c));
}

TEST(RuleProgramTest, BuiltinFunctions) {
  Schema schema = employee::MakeSchema();
  Record a = Employee("123456789", "ROBERT", "SMITH", "1 MAIN ST");
  Record b = Employee("213456789", "BOB", "SMYTH", "1 MAIN ST");

  auto check = [&](const std::string& cond, bool expected) {
    auto program = RuleProgram::Compile(
        "rule t: if " + cond + " then match", schema);
    ASSERT_TRUE(program.ok()) << program.status().ToString() << " " << cond;
    EXPECT_EQ(program->Matches(a, b), expected) << cond;
  };

  check("transposed(r1.ssn, r2.ssn)", true);
  check("same_name(r1.first_name, r2.first_name)", true);
  check("sounds_like(r1.last_name, r2.last_name)", true);
  check("soundex(r1.last_name) == soundex(r2.last_name)", true);
  check("nickname(r2.first_name) == \"ROBERT\"", true);
  check("empty(r1.apartment)", true);
  check("not empty(r1.ssn)", true);
  check("length(r1.ssn) == 9", true);
  check("prefix(r1.last_name, 2) == \"SM\"", true);
  check("digits(r1.address) == \"1\"", true);
  check("street_number(r1.address) == street_number(r2.address)", true);
  check("edit_distance(r1.ssn, r2.ssn) == 2", true);
  check("damerau(r1.ssn, r2.ssn) == 1", true);
  check("initial_match(r1.first_name, r2.first_name)", false);
  check("hyphen_extended(r1.last_name, r2.last_name)", false);
  check("keyboard_similarity(r1.last_name, r2.last_name) >= 0.8", true);
  // NYSIIS keeps Y as a consonant: SMITH -> SNAT, SMYTH -> SNYT.
  check("nysiis(r1.last_name) == nysiis(r2.last_name)", false);
}

TEST(RuleProgramTest, RuleFireCountsTrackFirstMatch) {
  auto program = RuleProgram::Compile(
      "rule a: if r1.ssn == r2.ssn then match\n"
      "rule b: if r1.last_name == r2.last_name then match",
      employee::MakeSchema());
  ASSERT_TRUE(program.ok());
  Record x = Employee("1", "A", "SMITH", "S");
  Record y = Employee("1", "B", "SMITH", "S");  // Both rules would fire.
  Record z = Employee("2", "C", "SMITH", "S");  // Only rule b.
  EXPECT_EQ(program->MatchingRule(x, y), 0);
  EXPECT_EQ(program->MatchingRule(x, z), 1);
  EXPECT_EQ(program->rule_fire_counts()[0], 1u);
  EXPECT_EQ(program->rule_fire_counts()[1], 1u);
  EXPECT_EQ(program->comparison_count(), 2u);
}

TEST(RuleProgramTest, CopyResetsCounters) {
  auto program = RuleProgram::Compile(
      "rule a: if r1.ssn == r2.ssn then match", employee::MakeSchema());
  ASSERT_TRUE(program.ok());
  Record x = Employee("1", "A", "S", "S");
  program->Matches(x, x);
  RuleProgram copy(*program);
  EXPECT_EQ(copy.comparison_count(), 0u);
  EXPECT_TRUE(copy.Matches(x, x));
  EXPECT_EQ(copy.comparison_count(), 1u);
  EXPECT_EQ(program->comparison_count(), 1u);
}

// --- EmployeeTheory unit behaviour. ---

class EmployeeTheoryTest : public ::testing::Test {
 protected:
  EmployeeTheory theory_;
};

TEST_F(EmployeeTheoryTest, IdenticalRecordsMatchRuleZero) {
  Record a = Employee("123456789", "JOHN", "SMITH", "1 MAIN ST");
  EXPECT_EQ(theory_.MatchingRule(a, a), 0);
}

TEST_F(EmployeeTheoryTest, PaperExampleRuleFires) {
  // Same last name, first differs slightly, same address.
  Record a = Employee("123456789", "MICHAEL", "SMITH", "1 MAIN ST");
  Record b = Employee("987654321", "MICHAL", "SMITH", "1 MAIN ST");
  int rule = theory_.MatchingRule(a, b);
  ASSERT_GE(rule, 0);
  EXPECT_EQ(EmployeeTheory::RuleName(rule), "paper-example-rule");
}

TEST_F(EmployeeTheoryTest, SsnTranspositionWithNames) {
  Record a = Employee("193456782", "JOHN", "SMITH", "1 MAIN ST");
  Record b = Employee("913456782", "JOHN", "SMITH", "2 ELM ST");
  EXPECT_TRUE(theory_.Matches(a, b));  // ssn close + names similar.
}

TEST_F(EmployeeTheoryTest, NicknameWithAddress) {
  Record a = Employee("111111111", "ROBERT", "JONES", "9 PINE RD");
  Record b = Employee("222222222", "BOB", "JONES", "9 PINE RD");
  EXPECT_TRUE(theory_.Matches(a, b));
}

TEST_F(EmployeeTheoryTest, LastNameChangedMarriage) {
  Record a = Employee("111111111", "MARY", "SMITH", "9 PINE RD");
  Record b = Employee("222222222", "MARY", "JOHNSON", "9 PINE RD");
  a.set_field(employee::kApartment, "APT 4");
  b.set_field(employee::kApartment, "APT 4");
  int rule = theory_.MatchingRule(a, b);
  ASSERT_GE(rule, 0);
  EXPECT_EQ(EmployeeTheory::RuleName(rule), "last-name-changed");
}

TEST_F(EmployeeTheoryTest, DifferentPeopleDoNotMatch) {
  Record a = Employee("111111111", "JOHN", "SMITH", "1 MAIN ST");
  Record b = Employee("222222222", "MARY", "JOHNSON", "7 ELM AVE");
  b.set_field(employee::kCity, "CHICAGO");
  b.set_field(employee::kState, "IL");
  b.set_field(employee::kZip, "60601");
  EXPECT_FALSE(theory_.Matches(a, b));
}

TEST_F(EmployeeTheoryTest, SameNameDifferentAddressAndSsnNoMatch) {
  // Two John Smiths in different cities with different SSNs: distinct.
  Record a = Employee("111111111", "JOHN", "SMITH", "1 MAIN ST");
  Record b = Employee("222222222", "JOHN", "SMITH", "999 OTHER RD");
  b.set_field(employee::kCity, "CHICAGO");
  b.set_field(employee::kState, "IL");
  b.set_field(employee::kZip, "60601");
  EXPECT_FALSE(theory_.Matches(a, b));
}

TEST_F(EmployeeTheoryTest, SymmetricOnConstructedPairs) {
  Record a = Employee("193456782", "ROBERT", "SMITH-JONES", "1 MAIN ST");
  Record b = Employee("913456782", "BOB", "SMITH", "1 MAIN ST");
  EXPECT_EQ(theory_.Matches(a, b), theory_.Matches(b, a));
}

TEST_F(EmployeeTheoryTest, HyphenatedSurnameExtension) {
  Record a = Employee("111111111", "ANNA", "SMITH", "3 OAK LN");
  Record b = Employee("999999999", "ANNA", "SMITH-JONES", "3 OAK LN");
  EXPECT_TRUE(theory_.Matches(a, b));
}

TEST_F(EmployeeTheoryTest, MissingFirstName) {
  Record a = Employee("111111111", "", "SMITH", "3 OAK LN");
  Record b = Employee("999999999", "ANNA", "SMITH", "3 OAK LN");
  EXPECT_TRUE(theory_.Matches(a, b));
}

TEST_F(EmployeeTheoryTest, ComparisonCounterAdvances) {
  Record a = Employee("1", "A", "B", "C");
  theory_.reset_comparison_count();
  theory_.Matches(a, a);
  theory_.Matches(a, a);
  EXPECT_EQ(theory_.comparison_count(), 2u);
}

TEST_F(EmployeeTheoryTest, DistanceOptionsChangeBehaviour) {
  // A pure first-name transposition: Damerau distance 1 (sim 0.833),
  // Levenshtein 2 (sim 0.667). Equal SSNs make rule 3 the only candidate:
  // addresses and locations are made different so neither the
  // transposition-specific rules (which require address similarity) nor
  // the phonetic rule can fire.
  Record a = Employee("111111111", "CARLOS", "SMITH", "1 MAIN ST");
  Record b = Employee("111111111", "CALROS", "SMITH", "742 EVERGREEN TER");
  b.set_field(employee::kCity, "CHICAGO");
  b.set_field(employee::kState, "IL");
  b.set_field(employee::kZip, "60601");
  EmployeeTheoryOptions damerau_options;
  damerau_options.distance = EmployeeTheoryOptions::Distance::kDamerau;
  EmployeeTheoryOptions edit_options;
  edit_options.distance = EmployeeTheoryOptions::Distance::kEdit;
  EXPECT_TRUE(EmployeeTheory(damerau_options).Matches(a, b));
  EXPECT_FALSE(EmployeeTheory(edit_options).Matches(a, b));
}

TEST_F(EmployeeTheoryTest, NicknamesCanBeDisabled) {
  Record a = Employee("111111111", "ROBERT", "JONES", "9 PINE RD");
  Record b = Employee("222222222", "BOB", "JONES", "9 PINE RD");
  EmployeeTheoryOptions options;
  options.use_nicknames = false;
  // BOB vs ROBERT is far in edit distance; without the nickname table the
  // nickname rules cannot fire. The pair can still match via rules that do
  // not need first-name similarity (same address + apartment etc.), so
  // check the firing rule is not a nickname rule.
  EmployeeTheory theory(options);
  int rule = theory.MatchingRule(a, b);
  if (rule >= 0) {
    EXPECT_NE(EmployeeTheory::RuleName(rule), "ssn-nickname");
    EXPECT_NE(EmployeeTheory::RuleName(rule), "nickname-last-address");
  }
}

TEST_F(EmployeeTheoryTest, RuleNamesAreDistinct) {
  std::set<std::string_view> names;
  for (size_t i = 0; i < EmployeeTheory::kNumRules; ++i) {
    names.insert(EmployeeTheory::RuleName(i));
  }
  EXPECT_EQ(names.size(), EmployeeTheory::kNumRules);
}

}  // namespace
}  // namespace mergepurge
