// Online service subsystem: wire protocol (parse / serialize / framing),
// the read-only MatchOnly probe and label cache, the MatchService
// concurrency contract, and the socket server's hardening against
// malformed and hostile clients.
//
// The headline test is ConcurrentMixEqualsSerialReplay: N threads issue
// interleaved match and upsert requests; after the drain, replaying the
// committed batches serially through a fresh IncrementalMergePurge must
// produce the identical entity partition — concurrency must not change
// the semantics, only the schedule.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "rules/employee_theory.h"
#include "service/batcher.h"
#include "service/match_service.h"
#include "service/protocol.h"
#include "service/server.h"
#include "util/sync.h"

namespace mergepurge {
namespace {

Schema TestSchema() { return employee::MakeSchema(); }

Record MakeRecord(std::string_view ssn, std::string_view first,
                  std::string_view last, std::string_view address) {
  Record r;
  r.set_field(employee::kSsn, std::string(ssn));
  r.set_field(employee::kFirstName, std::string(first));
  r.set_field(employee::kLastName, std::string(last));
  r.set_field(employee::kAddress, std::string(address));
  r.set_field(employee::kCity, "SPRINGFIELD");
  r.set_field(employee::kState, "IL");
  r.set_field(employee::kZip, "62701");
  return r;
}

MergePurgeOptions EngineOptions() {
  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 8;
  return options;
}

MatchServiceOptions ServiceOptions() {
  MatchServiceOptions options;
  options.engine = EngineOptions();
  return options;
}

MatchService::TheoryFactory EmployeeFactory() {
  return [] { return std::make_unique<EmployeeTheory>(); };
}

Dataset GenerateDataset(size_t num_records, uint64_t seed) {
  GeneratorConfig config;
  config.num_records = num_records;
  config.seed = seed;
  auto db = DatabaseGenerator(config).Generate();
  EXPECT_TRUE(db.ok());
  return std::move(db->dataset);
}

// --- Protocol: request parsing. ---

TEST(ProtocolTest, ParsesMatchRequest) {
  ServiceRequest request;
  ServiceError error;
  ASSERT_TRUE(ParseRequest(
      R"({"op":"match","id":7,"record":{"first_name":"JOHN","last_name":"DOE"}})",
      TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kMatch);
  ASSERT_EQ(request.records.size(), 1u);
  EXPECT_EQ(request.records[0].field(employee::kFirstName), "JOHN");
  ASSERT_TRUE(request.id.has_value());
  EXPECT_EQ(request.id->int_value(), 7);
}

TEST(ProtocolTest, ParsesUpsertRequest) {
  ServiceRequest request;
  ServiceError error;
  ASSERT_TRUE(ParseRequest(
      R"({"op":"upsert","records":[{"last_name":"DOE"},{"last_name":"ROE"}]})",
      TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kUpsert);
  ASSERT_EQ(request.records.size(), 2u);
  EXPECT_EQ(request.records[1].field(employee::kLastName), "ROE");
  EXPECT_FALSE(request.id.has_value());
}

TEST(ProtocolTest, ParsesPingAndStats) {
  ServiceRequest request;
  ServiceError error;
  EXPECT_TRUE(
      ParseRequest(R"({"op":"ping"})", TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kPing);
  EXPECT_TRUE(
      ParseRequest(R"({"op":"stats"})", TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kStats);
}

TEST(ProtocolTest, ParsesHealthAndTrace) {
  ServiceRequest request;
  ServiceError error;
  EXPECT_TRUE(
      ParseRequest(R"({"op":"health"})", TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kHealth);

  ASSERT_TRUE(ParseRequest(R"({"op":"trace","enabled":true,"sample":8})",
                           TestSchema(), &request, &error));
  EXPECT_EQ(request.op, ServiceRequest::Op::kTrace);
  EXPECT_TRUE(request.trace_enabled);
  ASSERT_TRUE(request.trace_sample.has_value());
  EXPECT_EQ(*request.trace_sample, 8u);

  // `sample` is optional; absent keeps the server's current interval.
  ASSERT_TRUE(ParseRequest(R"({"op":"trace","enabled":false})",
                           TestSchema(), &request, &error));
  EXPECT_FALSE(request.trace_enabled);
  EXPECT_FALSE(request.trace_sample.has_value());
}

struct BadRequestCase {
  const char* line;
  ServiceErrorCode code;
};

TEST(ProtocolTest, RejectsMalformedRequestsWithTypedErrors) {
  const BadRequestCase cases[] = {
      {"not json at all", ServiceErrorCode::kBadJson},
      {"{\"op\":\"match\"", ServiceErrorCode::kBadJson},
      {"[1,2,3]", ServiceErrorCode::kBadJson},
      {"{}", ServiceErrorCode::kBadRequest},
      {R"({"op":42})", ServiceErrorCode::kBadRequest},
      {R"({"op":"match"})", ServiceErrorCode::kBadRequest},
      {R"({"op":"match","records":[{}]})", ServiceErrorCode::kBadRequest},
      {R"({"op":"upsert","records":[]})", ServiceErrorCode::kBadRequest},
      {R"({"op":"upsert","record":{}})", ServiceErrorCode::kBadRequest},
      {R"({"op":"ping","records":[]})", ServiceErrorCode::kBadRequest},
      {R"({"op":"match","record":{},"surprise":1})",
       ServiceErrorCode::kBadRequest},
      {R"({"op":"merge","record":{}})", ServiceErrorCode::kUnknownOp},
      {R"({"op":"health","records":[]})", ServiceErrorCode::kBadRequest},
      {R"({"op":"trace"})", ServiceErrorCode::kBadRequest},
      {R"({"op":"trace","enabled":"yes"})", ServiceErrorCode::kBadRequest},
      {R"({"op":"trace","enabled":true,"sample":0})",
       ServiceErrorCode::kBadRequest},
      {R"({"op":"stats","enabled":true})", ServiceErrorCode::kBadRequest},
      {R"({"op":"match","record":{"no_such_field":"X"}})",
       ServiceErrorCode::kBadRecord},
      {R"({"op":"match","record":{"last_name":42}})",
       ServiceErrorCode::kBadRecord},
  };
  for (const BadRequestCase& c : cases) {
    ServiceRequest request;
    ServiceError error;
    EXPECT_FALSE(ParseRequest(c.line, TestSchema(), &request, &error))
        << c.line;
    EXPECT_EQ(ServiceErrorCodeName(error.code),
              std::string(ServiceErrorCodeName(c.code)))
        << c.line << " -> " << error.message;
  }
}

TEST(ProtocolTest, RecordJsonRoundTrip) {
  Schema schema = TestSchema();
  Record original = MakeRecord("123456789", "JOHN", "DOE", "12 OAK ST");
  JsonValue encoded = RecordToJson(schema, original);
  Record decoded;
  ServiceError error;
  ASSERT_TRUE(RecordFromJson(schema, encoded, "record", &decoded, &error))
      << error.message;
  for (FieldId f = 0; f < schema.num_fields(); ++f) {
    EXPECT_EQ(original.field(f), decoded.field(f)) << "field " << f;
  }
}

TEST(ProtocolTest, ResponseLinesAreSingleLineJsonWithOkFlag) {
  const std::string lines[] = {
      MatchResponseLine(nullptr, 3u, {1, 2}, {3}),
      UpsertResponseLine(nullptr, {0, 1}, 5),
      PingResponseLine(nullptr),
      StatsResponseLine(nullptr, 10, 7, 3),
  };
  for (const std::string& line : lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1);
    Result<JsonValue> parsed = ParseResponseLine(line);
    ASSERT_TRUE(parsed.ok());
    const JsonValue* ok = parsed->Find("ok");
    ASSERT_NE(ok, nullptr);
    EXPECT_TRUE(ok->bool_value());
  }
  Result<JsonValue> error_line = ParseResponseLine(ErrorResponseLine(
      nullptr, {ServiceErrorCode::kUnknownOp, "nope"}));
  ASSERT_TRUE(error_line.ok());
  EXPECT_FALSE(error_line->Find("ok")->bool_value());
  EXPECT_EQ(error_line->Find("error")->Find("code")->string_value(),
            "unknown_op");
}

TEST(ProtocolTest, ResponsesEchoRequestId) {
  JsonValue id("req-9");
  Result<JsonValue> parsed =
      ParseResponseLine(PingResponseLine(&id));
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("id"), nullptr);
  EXPECT_EQ(parsed->Find("id")->string_value(), "req-9");
}

// --- Framing. ---

TEST(LineFrameReaderTest, ReassemblesLinesAcrossArbitraryChunks) {
  LineFrameReader reader(1024);
  const std::string stream = "first line\r\nsecond\nthird one\n";
  // Feed one byte at a time: the harshest possible fragmentation.
  std::vector<std::string> lines;
  std::string line;
  for (char c : stream) {
    ASSERT_TRUE(reader.Append(std::string_view(&c, 1)));
    while (reader.NextLine(&line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first line");  // '\r' stripped.
  EXPECT_EQ(lines[1], "second");
  EXPECT_EQ(lines[2], "third one");
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(LineFrameReaderTest, MultipleLinesInOneAppend) {
  LineFrameReader reader(1024);
  ASSERT_TRUE(reader.Append("a\nb\nc"));
  std::string line;
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "b");
  EXPECT_FALSE(reader.NextLine(&line));
  EXPECT_EQ(reader.buffered_bytes(), 1u);  // "c" awaits its newline.
}

TEST(LineFrameReaderTest, OverflowIsPermanent) {
  LineFrameReader reader(16);
  EXPECT_TRUE(reader.Append("0123456789"));
  EXPECT_FALSE(reader.Append("0123456789"));  // 20 bytes, no newline.
  EXPECT_TRUE(reader.overflowed());
  // Even a newline cannot rescue the reader: framing was lost.
  EXPECT_FALSE(reader.Append("\n"));
  std::string line;
  EXPECT_FALSE(reader.NextLine(&line));
}

TEST(LineFrameReaderTest, OversizedCompleteLineOverflows) {
  LineFrameReader reader(8);
  // The oversized line arrives in one append WITH its newline, so Append
  // cannot reject it early — NextLine must trip the limit instead of
  // surfacing the line.
  EXPECT_TRUE(reader.Append("0123456789ABCDEF\n"));
  std::string line;
  EXPECT_FALSE(reader.NextLine(&line));
  EXPECT_TRUE(reader.overflowed());
}

TEST(LineFrameReaderTest, ShortLinesUnderLimitStillFlow) {
  LineFrameReader reader(8);
  ASSERT_TRUE(reader.Append("abc\ndef\n"));
  std::string line;
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "abc");
  ASSERT_TRUE(reader.NextLine(&line));
  EXPECT_EQ(line, "def");
  EXPECT_FALSE(reader.overflowed());
}

// --- MatchOnly probe + label cache. ---

TEST(MatchOnlyTest, EmptyEngineReturnsNoMatches) {
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;
  Result<ProbeResult> probe =
      engine.MatchOnly(MakeRecord("1", "A", "B", "C"), theory);
  ASSERT_TRUE(probe.ok());
  EXPECT_TRUE(probe->matches.empty());
}

TEST(MatchOnlyTest, ProbeFindsDuplicateWithoutAdmittingIt) {
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;
  Dataset batch(TestSchema());
  batch.Append(MakeRecord("123456789", "JOHN", "SMITH", "12 OAK STREET"));
  batch.Append(MakeRecord("987654321", "ALICE", "JONES", "9 ELM AVENUE"));
  ASSERT_TRUE(engine.AddBatch(batch, theory).ok());
  const size_t size_before = engine.size();
  const uint64_t pairs_before = engine.pairs().size();

  // An exact copy of an admitted record must match it.
  Result<ProbeResult> probe = engine.MatchOnly(
      MakeRecord("123456789", "JOHN", "SMITH", "12 OAK STREET"), theory);
  ASSERT_TRUE(probe.ok());
  ASSERT_FALSE(probe->matches.empty());
  EXPECT_EQ(probe->matches[0], 0u);

  // Probing is read-only: no record admitted, no pair recorded.
  EXPECT_EQ(engine.size(), size_before);
  EXPECT_EQ(engine.pairs().size(), pairs_before);

  // A record resembling nothing matches nothing.
  Result<ProbeResult> miss = engine.MatchOnly(
      MakeRecord("555001111", "XAVIER", "QUIXOTE", "77 NOWHERE LANE"),
      theory);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->matches.empty());
}

TEST(MatchOnlyTest, ProbeConditionsRawRecords) {
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;
  Dataset batch(TestSchema());
  batch.Append(MakeRecord("123456789", "JOHN", "SMITH", "12 OAK STREET"));
  ASSERT_TRUE(engine.AddBatch(batch, theory).ok());

  // Lowercase, unnormalized input: MatchOnly must condition the probe the
  // same way AddBatch conditions admitted records.
  Result<ProbeResult> probe = engine.MatchOnly(
      MakeRecord("123456789", "john", "smith", "12 oak street"), theory);
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(probe->matches.empty());
}

TEST(LabelCacheTest, CachedLabelsMatchAndInvalidateOnAddBatch) {
  Dataset all = GenerateDataset(300, 2026);
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;

  Dataset first(all.schema());
  for (TupleId t = 0; t < all.size() / 2; ++t) first.Append(all.record(t));
  ASSERT_TRUE(engine.AddBatch(first, theory).ok());
  EXPECT_EQ(engine.CachedComponentLabels(), engine.ComponentLabels());

  Dataset second(all.schema());
  for (TupleId t = static_cast<TupleId>(all.size() / 2); t < all.size();
       ++t) {
    second.Append(all.record(t));
  }
  ASSERT_TRUE(engine.AddBatch(second, theory).ok());
  // The cache must have been invalidated by the second batch: it reflects
  // the new partition and covers the new records.
  const std::vector<uint32_t>& cached = engine.CachedComponentLabels();
  EXPECT_EQ(cached.size(), engine.size());
  EXPECT_EQ(cached, engine.ComponentLabels());
}

// --- Batcher. ---

TEST(BatcherTest, CoalescesConcurrentSubmissionsAndPreservesOrder) {
  BatcherOptions options;
  options.max_batch_records = 1000;
  options.max_delay_ms = 20.0;

  Mutex mu;
  std::vector<size_t> commit_sizes;
  UpsertBatcher batcher(
      options, [&](std::vector<Record> records) -> Result<BatchCommit> {
        MutexLock lock(mu);
        commit_sizes.push_back(records.size());
        // Label each record with its global commit position.
        static uint32_t next = 0;
        BatchCommit commit;
        commit.base_tid = next;
        commit.labels.resize(records.size());
        for (uint32_t& l : commit.labels) l = next++;
        return commit;
      });

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5;
  std::vector<std::thread> threads;
  std::atomic<size_t> total_labels{0};
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&batcher, &total_labels] {
      for (size_t i = 0; i < kPerThread; ++i) {
        std::vector<Record> records(3);
        auto future = batcher.Submit(std::move(records));
        Result<UpsertSlice> slice = future.get();
        ASSERT_TRUE(slice.ok());
        ASSERT_EQ(slice->entities.size(), 3u);
        // A request's labels are contiguous: the batcher never splits a
        // request across commits.
        EXPECT_EQ(slice->entities[1], slice->entities[0] + 1);
        EXPECT_EQ(slice->entities[2], slice->entities[0] + 2);
        // The sliced base tid names the request's first record.
        EXPECT_EQ(slice->base_tid, slice->entities[0]);
        total_labels.fetch_add(slice->entities.size());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  batcher.Drain();

  EXPECT_EQ(total_labels.load(), kThreads * kPerThread * 3);
  size_t committed = 0;
  for (size_t s : batcher.committed_batch_sizes()) committed += s;
  EXPECT_EQ(committed, kThreads * kPerThread * 3);
  // With a 20ms window and 8 writers, at least SOME coalescing happened
  // (strictly fewer commits than requests).
  EXPECT_LT(batcher.committed_batch_sizes().size(),
            kThreads * kPerThread);
}

TEST(BatcherTest, SubmitAfterDrainFails) {
  UpsertBatcher batcher(
      BatcherOptions{},
      [](std::vector<Record> records) -> Result<BatchCommit> {
        BatchCommit commit;
        commit.labels.assign(records.size(), 0);
        return commit;
      });
  batcher.Drain();
  auto future = batcher.Submit(std::vector<Record>(1));
  EXPECT_FALSE(future.get().ok());
}

// --- MatchService. ---

TEST(MatchServiceTest, UpsertAssignsEntitiesAndMatchFindsThem) {
  MatchService service(ServiceOptions(), EmployeeFactory());
  std::vector<Record> records;
  records.push_back(
      MakeRecord("123456789", "JOHN", "SMITH", "12 OAK STREET"));
  records.push_back(
      MakeRecord("987654321", "ALICE", "JONES", "9 ELM AVENUE"));
  Result<MatchService::UpsertOutcome> upsert =
      service.Upsert(std::move(records));
  ASSERT_TRUE(upsert.ok());
  ASSERT_EQ(upsert->entities.size(), 2u);
  // Distinct people get distinct entities.
  EXPECT_NE(upsert->entities[0], upsert->entities[1]);

  Result<MatchService::MatchOutcome> match = service.Match(
      MakeRecord("123456789", "JOHN", "SMITH", "12 OAK STREET"));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->entity.has_value());
  EXPECT_EQ(*match->entity, upsert->entities[0]);

  MatchService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.entities, 2u);
}

TEST(MatchServiceTest, MatchOnEmptyServiceFindsNothing) {
  MatchService service(ServiceOptions(), EmployeeFactory());
  Result<MatchService::MatchOutcome> match =
      service.Match(MakeRecord("1", "A", "B", "C"));
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->entity.has_value());
  EXPECT_TRUE(match->matches.empty());
}

TEST(MatchServiceTest, UpsertAfterDrainFails) {
  MatchService service(ServiceOptions(), EmployeeFactory());
  ASSERT_TRUE(
      service.Upsert({MakeRecord("1", "A", "B", "C")}).ok());
  service.Drain();
  EXPECT_FALSE(
      service.Upsert({MakeRecord("2", "D", "E", "F")}).ok());
  // Reads keep working on the frozen state.
  EXPECT_TRUE(service.Match(MakeRecord("1", "A", "B", "C")).ok());
  EXPECT_EQ(service.GetStats().records, 1u);
}

// The concurrency contract: an interleaved concurrent mix must be
// indistinguishable (by final state) from a serial replay of the batches
// the writer actually committed.
TEST(MatchServiceTest, ConcurrentMixEqualsSerialReplay) {
  Dataset all = GenerateDataset(400, 31337);

  MatchServiceOptions options = ServiceOptions();
  options.batcher.max_batch_records = 64;
  options.batcher.max_delay_ms = 1.0;
  MatchService service(options, EmployeeFactory());

  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  std::atomic<bool> writers_done{false};
  std::atomic<uint64_t> matches_served{0};

  std::vector<std::thread> threads;
  // Writers: partition the dataset, upsert small uneven slices.
  const size_t total = all.size();
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const size_t begin = total * w / kWriters;
      const size_t end = total * (w + 1) / kWriters;
      size_t i = begin;
      size_t step = 1 + w;  // Uneven request sizes across writers.
      while (i < end) {
        const size_t n = std::min(step, end - i);
        std::vector<Record> records;
        records.reserve(n);
        for (size_t k = 0; k < n; ++k) {
          records.push_back(all.record(static_cast<TupleId>(i + k)));
        }
        Result<MatchService::UpsertOutcome> outcome =
            service.Upsert(std::move(records));
        ASSERT_TRUE(outcome.ok());
        ASSERT_EQ(outcome->entities.size(), n);
        i += n;
        step = (step % 7) + 1;
      }
    });
  }
  // Readers: hammer Match with records from the dataset while writers
  // are admitting them.
  for (size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      uint64_t probes = 0;
      TupleId t = static_cast<TupleId>(r * 17 % total);
      while (!writers_done.load(std::memory_order_acquire)) {
        Result<MatchService::MatchOutcome> outcome =
            service.Match(all.record(t));
        ASSERT_TRUE(outcome.ok());
        t = static_cast<TupleId>((t + 13) % total);
        ++probes;
      }
      matches_served.fetch_add(probes);
    });
  }
  for (size_t w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true, std::memory_order_release);
  for (size_t r = kWriters; r < threads.size(); ++r) threads[r].join();
  service.Drain();

  // Replay the committed batches serially through a fresh engine.
  Dataset admitted = service.CopyRecords();
  ASSERT_EQ(admitted.size(), total);
  const std::vector<size_t> batch_sizes = service.committed_batch_sizes();
  size_t replayed = 0;
  IncrementalMergePurge serial(EngineOptions());
  EmployeeTheory theory;
  for (size_t batch_size : batch_sizes) {
    Dataset batch(admitted.schema());
    for (size_t k = 0; k < batch_size; ++k) {
      batch.Append(admitted.record(static_cast<TupleId>(replayed + k)));
    }
    ASSERT_TRUE(serial.AddBatch(batch, theory).ok());
    replayed += batch_size;
  }
  ASSERT_EQ(replayed, total);

  // Same partition, same pair count: concurrency changed nothing.
  EXPECT_EQ(service.ComponentLabels(), serial.ComponentLabels());
  EXPECT_EQ(service.GetStats().pairs, serial.pairs().size());
  EXPECT_EQ(service.GetStats().entities, serial.NumEntities());
  // The readers actually ran concurrently with the writers.
  EXPECT_GT(matches_served.load(), 0u);
}

// --- Server end-to-end over loopback sockets. ---

// Minimal blocking test client.
class TestClient {
 public:
  ~TestClient() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool Send(std::string_view data) {
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
  }

  // Reads one '\n'-terminated line; empty string on EOF / error.
  std::string ReadLine() {
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return std::string();
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  JsonValue Call(std::string_view request_line) {
    EXPECT_TRUE(Send(request_line));
    std::string line = ReadLine();
    EXPECT_FALSE(line.empty());
    Result<JsonValue> parsed = ParseResponseLine(line);
    EXPECT_TRUE(parsed.ok()) << line;
    return parsed.ok() ? std::move(*parsed) : JsonValue::Object();
  }

  // True when the peer has closed (EOF) — distinguishes "connection shut"
  // from "still open" after fatal protocol errors.
  bool AtEof() {
    char byte;
    const ssize_t n = ::recv(fd_, &byte, 1, 0);
    return n == 0;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = ServerOptions()) {
    service_ = std::make_unique<MatchService>(ServiceOptions(),
                                              EmployeeFactory());
    options.port = 0;  // Ephemeral.
    options.idle_timeout_ms = 5000;
    server_ = std::make_unique<Server>(options, service_.get());
    Result<uint16_t> port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->RequestDrain();
      server_->Join();
    }
  }

  static bool Ok(const JsonValue& response) {
    const JsonValue* ok = response.Find("ok");
    return ok != nullptr && ok->bool_value();
  }

  static std::string ErrorCode(const JsonValue& response) {
    const JsonValue* error = response.Find("error");
    if (error == nullptr) return "";
    const JsonValue* code = error->Find("code");
    return code == nullptr ? "" : code->string_value();
  }

  std::unique_ptr<MatchService> service_;
  std::unique_ptr<Server> server_;
  uint16_t port_ = 0;
};

TEST_F(ServerTest, PingUpsertMatchStatsRoundTrip) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));

  JsonValue pong = client.Call("{\"op\":\"ping\",\"id\":1}\n");
  EXPECT_TRUE(Ok(pong));
  EXPECT_EQ(pong.Find("id")->int_value(), 1);

  JsonValue upsert = client.Call(
      R"({"op":"upsert","records":[)"
      R"({"ssn":"123456789","first_name":"JOHN","last_name":"SMITH",)"
      R"("address":"12 OAK STREET","city":"SPRINGFIELD","state":"IL",)"
      R"("zip":"62701"}]})"
      "\n");
  ASSERT_TRUE(Ok(upsert)) << ErrorCode(upsert);
  ASSERT_EQ(upsert.Find("entities")->elements().size(), 1u);

  JsonValue match = client.Call(
      R"({"op":"match","record":)"
      R"({"ssn":"123456789","first_name":"JOHN","last_name":"SMITH",)"
      R"("address":"12 OAK STREET","city":"SPRINGFIELD","state":"IL",)"
      R"("zip":"62701"}})"
      "\n");
  ASSERT_TRUE(Ok(match)) << ErrorCode(match);
  EXPECT_FALSE(match.Find("matches")->elements().empty());
  EXPECT_FALSE(match.Find("entity")->is_null());

  JsonValue stats = client.Call("{\"op\":\"stats\"}\n");
  ASSERT_TRUE(Ok(stats));
  EXPECT_EQ(stats.Find("records")->int_value(), 1);
}

TEST_F(ServerTest, StatsCarriesIntrospectionSections) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(Ok(client.Call(
      R"({"op":"upsert","records":[{"ssn":"123456789",)"
      R"("first_name":"JOHN","last_name":"SMITH"}]})"
      "\n")));

  JsonValue stats = client.Call("{\"op\":\"stats\"}\n");
  ASSERT_TRUE(Ok(stats));
  EXPECT_EQ(stats.Find("state")->string_value(), "serving");
  EXPECT_GE(stats.Find("uptime_seconds")->double_value(), 0.0);
  ASSERT_NE(stats.Find("counters"), nullptr);
  ASSERT_NE(stats.Find("gauges"), nullptr);
  ASSERT_NE(stats.Find("histograms"), nullptr);

  // The registry is process-global and other tests feed it, so assert
  // floors, not exact counts.
  const JsonValue* requests =
      stats.Find("counters")->Find("service.requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->int_value(), 2);
  const JsonValue* upsert_us =
      stats.Find("histograms")->Find("service.upsert_us");
  ASSERT_NE(upsert_us, nullptr);
  EXPECT_GE(upsert_us->Find("count")->int_value(), 1);
  EXPECT_NE(upsert_us->Find("p50"), nullptr);
  EXPECT_NE(upsert_us->Find("p99"), nullptr);
  // Commit-pipeline stage attribution rides in the same histogram map.
  const JsonValue* apply_us =
      stats.Find("histograms")->Find("service.stage.apply_us");
  ASSERT_NE(apply_us, nullptr);
  EXPECT_GE(apply_us->Find("count")->int_value(), 1);
  // Resident gauges were refreshed by the committed batch.
  EXPECT_GE(stats.Find("gauges")
                ->Find("service.records_resident")
                ->double_value(),
            1.0);

  // A first poll has nothing to diff against; the window becomes valid
  // once a second snapshot lands in the ring.
  ASSERT_NE(stats.Find("window"), nullptr);
  JsonValue again = client.Call("{\"op\":\"stats\"}\n");
  ASSERT_TRUE(Ok(again));
  const JsonValue* window = again.Find("window");
  ASSERT_NE(window, nullptr);
  ASSERT_TRUE(window->Find("valid")->bool_value());
  EXPECT_GT(window->Find("seconds")->double_value(), 0.0);
  EXPECT_GE(window->Find("requests_per_sec")->double_value(), 0.0);
  ASSERT_NE(window->Find("histograms"), nullptr);
}

TEST_F(ServerTest, HealthReportsServingStateAndResidentSizes) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));
  ASSERT_TRUE(Ok(client.Call(
      R"({"op":"upsert","records":[{"ssn":"123456789",)"
      R"("first_name":"JOHN","last_name":"SMITH"}]})"
      "\n")));

  JsonValue health = client.Call("{\"op\":\"health\",\"id\":5}\n");
  ASSERT_TRUE(Ok(health));
  EXPECT_EQ(health.Find("id")->int_value(), 5);
  EXPECT_EQ(health.Find("state")->string_value(), "serving");
  EXPECT_GE(health.Find("uptime_seconds")->double_value(), 0.0);
  // No durability configured: the WAL section says so instead of lying
  // with zeros.
  const JsonValue* wal = health.Find("wal");
  ASSERT_NE(wal, nullptr);
  EXPECT_FALSE(wal->Find("enabled")->bool_value());
  const JsonValue* resident = health.Find("resident");
  ASSERT_NE(resident, nullptr);
  EXPECT_EQ(resident->Find("records")->int_value(), 1);
  EXPECT_GE(resident->Find("components")->int_value(), 1);
}

TEST_F(ServerTest, TraceToggleControlsRecorderAndSampling) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));

  JsonValue on =
      client.Call(R"({"op":"trace","enabled":true,"sample":3})" "\n");
  ASSERT_TRUE(Ok(on));
  EXPECT_TRUE(on.Find("tracing")->bool_value());
  EXPECT_EQ(on.Find("sample")->int_value(), 3);
  EXPECT_TRUE(TraceRecorder::Global().enabled());

  // Sampled requests still serve normally while tracing.
  EXPECT_TRUE(Ok(client.Call("{\"op\":\"ping\"}\n")));

  JsonValue off = client.Call(R"({"op":"trace","enabled":false})" "\n");
  ASSERT_TRUE(Ok(off));
  EXPECT_FALSE(off.Find("tracing")->bool_value());
  // The sampling interval persists across toggles.
  EXPECT_EQ(off.Find("sample")->int_value(), 3);
  EXPECT_FALSE(TraceRecorder::Global().enabled());
}

TEST_F(ServerTest, StateNameReflectsDrain) {
  StartServer();
  EXPECT_STREQ(server_->StateName(), "serving");
  server_->RequestDrain();
  // RequestDrain shuts connection reads, so the draining state is
  // observable through StateName (and the health doc it feeds), not
  // through a new request on this socket.
  EXPECT_STREQ(server_->StateName(), "draining");
  server_->Join();
}

// Startup recovery runs off-thread: the server binds and answers health
// ("recovering") immediately, refuses writes with a retryable error, and
// flips to serving once the replay lands.
TEST(ServerRecoveryTest, HealthAnswersDuringRecoveryAndUpsertsRefused) {
  char tmpl[] = "/tmp/mergepurge_service_recovery_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  MatchServiceOptions options = ServiceOptions();
  options.durability.data_dir = dir;
  options.durability.fsync = FsyncPolicy::kNone;
  options.durability.recovery_delay_for_testing_ms = 400;
  MatchService service(options, EmployeeFactory());
  EXPECT_EQ(service.lifecycle(), MatchService::Lifecycle::kRecovering);

  ServerOptions server_options;
  server_options.port = 0;
  Server server(server_options, &service);
  Result<uint16_t> port = server.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  TestClient client;
  ASSERT_TRUE(client.Connect(*port));

  JsonValue health = client.Call("{\"op\":\"health\"}\n");
  const JsonValue* ok = health.Find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->bool_value());
  EXPECT_EQ(health.Find("state")->string_value(), "recovering");
  // The reduced recovering doc: no engine-backed sections, which would
  // block behind the recovery thread's write lock.
  EXPECT_EQ(health.Find("resident"), nullptr);

  JsonValue refused = client.Call(
      R"({"op":"upsert","records":[{"last_name":"DOE"}]})" "\n");
  EXPECT_FALSE(refused.Find("ok")->bool_value());
  EXPECT_EQ(refused.Find("error")->Find("code")->string_value(),
            "recovering");
  JsonValue stats_refused = client.Call("{\"op\":\"stats\"}\n");
  EXPECT_FALSE(stats_refused.Find("ok")->bool_value());
  EXPECT_EQ(stats_refused.Find("error")->Find("code")->string_value(),
            "recovering");

  ASSERT_TRUE(service.WaitForRecovery().ok());
  JsonValue admitted = client.Call(
      R"({"op":"upsert","records":[{"last_name":"DOE"}]})" "\n");
  EXPECT_TRUE(admitted.Find("ok")->bool_value());
  JsonValue healthy = client.Call("{\"op\":\"health\"}\n");
  EXPECT_EQ(healthy.Find("state")->string_value(), "serving");
  EXPECT_EQ(healthy.Find("resident")->Find("records")->int_value(), 1);

  client.Close();
  server.RequestDrain();
  server.Join();
  std::filesystem::remove_all(dir);
}

TEST_F(ServerTest, InvalidJsonGetsTypedErrorAndConnectionSurvives) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));

  JsonValue bad = client.Call("this is not json\n");
  EXPECT_FALSE(Ok(bad));
  EXPECT_EQ(ErrorCode(bad), "bad_json");

  JsonValue unknown = client.Call("{\"op\":\"obliterate\"}\n");
  EXPECT_FALSE(Ok(unknown));
  EXPECT_EQ(ErrorCode(unknown), "unknown_op");

  JsonValue bad_record =
      client.Call(R"({"op":"match","record":{"shoe_size":"12"}})"
                  "\n");
  EXPECT_FALSE(Ok(bad_record));
  EXPECT_EQ(ErrorCode(bad_record), "bad_record");

  // The connection is still in sync: a valid request succeeds.
  EXPECT_TRUE(Ok(client.Call("{\"op\":\"ping\"}\n")));
}

TEST_F(ServerTest, OversizedLineGetsFrameTooLargeAndClose) {
  ServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));

  std::string huge(1024, 'x');
  huge += "\n";
  ASSERT_TRUE(client.Send(huge));
  std::string line = client.ReadLine();
  Result<JsonValue> parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(ErrorCode(*parsed), "frame_too_large");
  EXPECT_TRUE(client.AtEof());  // Fatal: the server closed.

  // The server itself is unharmed: a fresh connection works.
  TestClient next;
  ASSERT_TRUE(next.Connect(port_));
  EXPECT_TRUE(Ok(next.Call("{\"op\":\"ping\"}\n")));
}

TEST_F(ServerTest, PartialFramesCompleteAcrossSends) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));

  ASSERT_TRUE(client.Send("{\"op\":"));
  ASSERT_TRUE(client.Send("\"pi"));
  ASSERT_TRUE(client.Send("ng\"}"));
  ASSERT_TRUE(client.Send("\n"));
  std::string line = client.ReadLine();
  Result<JsonValue> parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(Ok(*parsed));
}

TEST_F(ServerTest, AbruptDisconnectLeavesServerHealthy) {
  StartServer();
  {
    TestClient client;
    ASSERT_TRUE(client.Connect(port_));
    // Half a request, then vanish.
    ASSERT_TRUE(client.Send("{\"op\":\"upsert\",\"records\":[{"));
    client.Close();
  }
  TestClient next;
  ASSERT_TRUE(next.Connect(port_));
  EXPECT_TRUE(Ok(next.Call("{\"op\":\"ping\"}\n")));
}

TEST_F(ServerTest, ConnectionCapRejectsExcessConnections) {
  ServerOptions options;
  options.num_workers = 1;
  options.max_connections = 1;
  StartServer(options);

  TestClient first;
  ASSERT_TRUE(first.Connect(port_));
  ASSERT_TRUE(Ok(first.Call("{\"op\":\"ping\"}\n")));  // Fully admitted.

  TestClient second;
  ASSERT_TRUE(second.Connect(port_));
  std::string line = second.ReadLine();  // Rejection arrives unprompted.
  Result<JsonValue> parsed = ParseResponseLine(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(ErrorCode(*parsed), "too_many_connections");
  EXPECT_TRUE(second.AtEof());

  // The admitted connection is unaffected.
  EXPECT_TRUE(Ok(first.Call("{\"op\":\"ping\"}\n")));
}

TEST_F(ServerTest, GracefulDrainPreservesAdmittedState) {
  StartServer();
  TestClient client;
  ASSERT_TRUE(client.Connect(port_));
  JsonValue upsert = client.Call(
      R"({"op":"upsert","records":[{"ssn":"111223333",)"
      R"("first_name":"JANE","last_name":"DOE"}]})"
      "\n");
  ASSERT_TRUE(Ok(upsert));
  client.Close();

  server_->RequestDrain();
  server_->Join();

  // The admitted record survived the drain in the service.
  EXPECT_EQ(service_->GetStats().records, 1u);
  // Post-drain, new connections are not accepted.
  TestClient late;
  if (late.Connect(port_)) {
    EXPECT_TRUE(late.AtEof());
  }
  server_.reset();
}

}  // namespace
}  // namespace mergepurge
