// Shard subsystem: router determinism over histogram edge cases,
// boundary-band membership (the paper's §4 fragmentation rule applied
// online), the global-closure label algebra, and the headline 2-shard
// in-process coordinator contract test — the entity partition produced
// through a coordinator fronting two shard engines must equal the
// partition a single engine produces over the same record stream
// (shard-count invariance, docs/sharding.md).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "obs/json.h"
#include "rules/employee_theory.h"
#include "service/client.h"
#include "service/match_service.h"
#include "service/protocol.h"
#include "service/server.h"
#include "shard/boundary.h"
#include "shard/coordinator.h"
#include "shard/global_closure.h"
#include "shard/router.h"

namespace mergepurge {
namespace {

Record LastNameRecord(std::string_view last) {
  Record r;
  r.set_field(employee::kLastName, std::string(last));
  return r;
}

std::vector<Record> LastNameRecords(
    const std::vector<std::string>& names) {
  std::vector<Record> records;
  records.reserve(names.size());
  for (const std::string& name : names) {
    records.push_back(LastNameRecord(name));
  }
  return records;
}

Dataset GenerateDataset(size_t num_records, uint64_t seed) {
  GeneratorConfig config;
  config.num_records = num_records;
  config.seed = seed;
  auto db = DatabaseGenerator(config).Generate();
  EXPECT_TRUE(db.ok());
  return std::move(db->dataset);
}

// --- ShardRouter. ---

TEST(ShardRouterTest, BuildIsDeterministicAndMonotone) {
  const std::vector<std::string> names = {
      "ADAMS", "BAKER", "COOPER", "DAVIS",  "EVANS",  "FISHER",
      "GREEN", "HARRIS", "IRWIN", "JONES",  "KELLER", "LOPEZ",
      "MOORE", "NORRIS", "OWENS", "PARKER", "QUINN",  "REED",
      "SMITH", "TAYLOR", "UNDERWOOD", "VANCE", "WALKER", "YOUNG"};
  const std::vector<Record> sample = LastNameRecords(names);
  ShardRouterOptions options;
  options.num_shards = 4;
  Rng rng_a(7), rng_b(7);
  Result<ShardRouter> a =
      ShardRouter::Build({LastNameKey()}, sample, options, &rng_a);
  Result<ShardRouter> b =
      ShardRouter::Build({LastNameKey()}, sample, options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  size_t previous = 0;
  std::set<size_t> owners_seen;
  for (const std::string& name : names) {  // Already sorted.
    const size_t owner = a->OwnerOfKey(0, name);
    EXPECT_EQ(owner, b->OwnerOfKey(0, name)) << name;
    EXPECT_LT(owner, 4u);
    // Monotone: sorted keys route to non-decreasing shards, so each
    // shard owns a contiguous key range.
    EXPECT_GE(owner, previous) << name;
    previous = owner;
    owners_seen.insert(owner);
  }
  // An equi-depth split of 24 evenly spread names uses all 4 shards.
  EXPECT_EQ(owners_seen.size(), 4u);
}

TEST(ShardRouterTest, SingleClusterWhenAllKeysCollide) {
  // Every sampled key identical: the histogram has one occupied bin and
  // the equi-depth split degenerates to a single cluster. The router
  // must stay valid (everything routes to one shard) rather than fail.
  const std::vector<Record> sample =
      LastNameRecords({"SMITH", "SMITH", "SMITH", "SMITH"});
  ShardRouterOptions options;
  options.num_shards = 4;
  Rng rng(7);
  Result<ShardRouter> router =
      ShardRouter::Build({LastNameKey()}, sample, options, &rng);
  ASSERT_TRUE(router.ok());
  const size_t owner = router->OwnerOfKey(0, "SMITH");
  EXPECT_LT(owner, 4u);
  // Unseen keys on either side still map to valid shards.
  EXPECT_LT(router->OwnerOfKey(0, "AARON"), 4u);
  EXPECT_LT(router->OwnerOfKey(0, "ZEBRA"), 4u);
  EXPECT_LE(router->OwnerOfKey(0, "AARON"), owner);
  EXPECT_GE(router->OwnerOfKey(0, "ZEBRA"), owner);
}

TEST(ShardRouterTest, HandlesUnicodeKeyPrefixes) {
  // Multi-byte UTF-8 prefixes land in the histogram's "other" symbol
  // (cluster/histogram.h maps non-[0-9A-Za-z] bytes to symbol 0), so
  // the router must (a) build without error, (b) route them to valid
  // shards deterministically, and (c) keep them at-or-below every
  // ASCII-letter key's shard — symbol 0 precedes digits and letters in
  // bin order, whatever the raw UTF-8 bytes compare as.
  const std::vector<std::string> leading = {"ÅBERG", "ÉLODIE", "ŌTA",
                                            "ŻUK"};
  std::vector<std::string> unicode = leading;
  unicode.insert(unicode.end(), {"MÜLLER", "NÚÑEZ"});
  std::vector<std::string> names = unicode;
  names.insert(names.end(), {"ADAMS", "JONES", "ZHOU"});
  const std::vector<Record> sample = LastNameRecords(names);
  ShardRouterOptions options;
  options.num_shards = 3;
  Rng rng_a(11), rng_b(11);
  Result<ShardRouter> a =
      ShardRouter::Build({LastNameKey()}, sample, options, &rng_a);
  Result<ShardRouter> b =
      ShardRouter::Build({LastNameKey()}, sample, options, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  const size_t ascii_floor = a->OwnerOfKey(0, "ADAMS");
  for (const std::string& name : unicode) {
    const size_t owner = a->OwnerOfKey(0, name);
    EXPECT_LT(owner, 3u) << name;
    EXPECT_EQ(owner, b->OwnerOfKey(0, name)) << name;
  }
  // The floor applies to names whose LEADING byte is non-ASCII; names
  // like MÜLLER bin by their ASCII first letter as usual.
  for (const std::string& name : leading) {
    EXPECT_LE(a->OwnerOfKey(0, name), ascii_floor) << name;
  }
  // Records carrying these names route identically to their raw keys.
  for (const Record& record : sample) {
    EXPECT_EQ(a->OwnerOf(0, record),
              a->OwnerOfKey(0, a->KeyOf(0, record)));
  }
}

TEST(ShardRouterTest, EmptySampleOrKeysIsRejected) {
  Rng rng(1);
  ShardRouterOptions options;
  EXPECT_FALSE(
      ShardRouter::Build({}, LastNameRecords({"A"}), options, &rng).ok());
  EXPECT_FALSE(
      ShardRouter::Build({LastNameKey()}, {}, options, &rng).ok());
  options.num_shards = 0;
  EXPECT_FALSE(ShardRouter::Build({LastNameKey()},
                                  LastNameRecords({"A"}), options, &rng)
                   .ok());
}

TEST(ShardRouterTest, DestinationsAreDedupedUnionOfPerKeyOwners) {
  const std::vector<std::string> names = {"ADAMS", "BAKER", "SMITH",
                                          "TAYLOR"};
  const std::vector<Record> sample = LastNameRecords(names);
  ShardRouterOptions options;
  options.num_shards = 2;
  Rng rng(3);
  // Two identical key specs: per-key owners coincide, so destinations
  // must collapse to one entry per shard.
  Result<ShardRouter> router = ShardRouter::Build(
      {LastNameKey(), LastNameKey()}, sample, options, &rng);
  ASSERT_TRUE(router.ok());
  for (const Record& record : sample) {
    const std::vector<size_t> destinations =
        router->DestinationsOf(record);
    ASSERT_EQ(destinations.size(), 1u);
    EXPECT_EQ(destinations[0], router->OwnerOf(0, record));
  }
}

// --- BoundaryBand. ---

TEST(BoundaryBandTest, ReplicatesTheExtremeBandToNeighbors) {
  // 2 shards, window 3 -> band width 2 per cut side.
  BoundaryBand band(2, 2);
  std::vector<size_t> out;

  // Shard 0's upper band (toward shard 1): the first two keys are
  // trivially among the two largest seen.
  band.Replicas(0, "MOORE", &out);
  EXPECT_EQ(out, std::vector<size_t>({1}));
  out.clear();
  band.Replicas(0, "NOLAN", &out);
  EXPECT_EQ(out, std::vector<size_t>({1}));
  out.clear();
  // "ADAMS" is below both tracked keys: not in the upper band.
  band.Replicas(0, "ADAMS", &out);
  EXPECT_TRUE(out.empty());
  // "ZEBRA" beats the tracked minimum: in-band, evicting "MOORE".
  band.Replicas(0, "ZEBRA", &out);
  EXPECT_EQ(out, std::vector<size_t>({1}));
  out.clear();
  // "MOORE" again: the band is now {NOLAN, ZEBRA}, so MOORE is out.
  band.Replicas(0, "MOORE", &out);
  EXPECT_TRUE(out.empty());

  // Shard 1's lower band mirrors toward shard 0.
  band.Replicas(1, "QUINN", &out);
  EXPECT_EQ(out, std::vector<size_t>({0}));
  out.clear();
  band.Replicas(1, "PRICE", &out);
  EXPECT_EQ(out, std::vector<size_t>({0}));
  out.clear();
  band.Replicas(1, "ZWEIG", &out);  // Above both tracked: out of band.
  EXPECT_TRUE(out.empty());
}

TEST(BoundaryBandTest, EdgeShardsHaveOneSidedBands) {
  BoundaryBand band(3, 2);
  std::vector<size_t> out;
  // Shard 0 has no lower neighbor; shard 2 no upper.
  band.Replicas(0, "AAA", &out);
  EXPECT_EQ(out, std::vector<size_t>({1}));
  out.clear();
  band.Replicas(2, "ZZZ", &out);
  EXPECT_EQ(out, std::vector<size_t>({1}));
  out.clear();
  // A middle shard can be in both of its cut bands at once.
  band.Replicas(1, "MMM", &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, std::vector<size_t>({0, 2}));
}

TEST(BoundaryBandTest, ZeroWidthDisablesReplication) {
  BoundaryBand band(2, 0);
  std::vector<size_t> out;
  band.Replicas(0, "ANY", &out);
  band.Replicas(1, "KEY", &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(band.tracked(), 0u);
}

TEST(BoundaryBandTest, FinalExtremesWereAlwaysReplicated) {
  // The conservative online rule's correctness obligation: every key
  // that ENDS among the band_width most extreme must have been
  // replicated at its own arrival, whatever the arrival order.
  const size_t kWidth = 3;
  std::vector<std::string> keys = {"ECHO", "ALFA", "GOLF", "CHARLIE",
                                   "FOXTROT", "BRAVO", "HOTEL", "DELTA",
                                   "INDIA", "JULIET"};
  // Try several arrival orders (deterministic rotations + reverse).
  for (size_t rotation = 0; rotation < keys.size(); ++rotation) {
    std::vector<std::string> order = keys;
    std::rotate(order.begin(), order.begin() + rotation, order.end());
    if (rotation % 2 == 1) std::reverse(order.begin(), order.end());

    BoundaryBand band(2, kWidth);
    std::set<std::string> replicated;
    std::vector<size_t> out;
    for (const std::string& key : order) {
      out.clear();
      band.Replicas(0, key, &out);
      if (!out.empty()) replicated.insert(key);
    }
    std::vector<std::string> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = sorted.size() - kWidth; i < sorted.size(); ++i) {
      EXPECT_TRUE(replicated.count(sorted[i]))
          << sorted[i] << " (rotation " << rotation << ")";
    }
  }
}

// --- GlobalClosure / ShardLabelSpace. ---

TEST(GlobalClosureTest, SmallestIdIsCanonicalAndUnionsAreIdempotent) {
  GlobalClosure closure;
  for (int i = 0; i < 5; ++i) closure.NewId();
  EXPECT_EQ(closure.num_ids(), 5u);
  EXPECT_EQ(closure.num_entities(), 5u);

  closure.Union(3, 1);
  closure.Union(4, 3);
  EXPECT_EQ(closure.Find(4), 1u);
  EXPECT_EQ(closure.num_entities(), 3u);
  closure.Union(1, 4);  // Replay: no further change.
  EXPECT_EQ(closure.num_entities(), 3u);
  EXPECT_EQ(closure.Find(0), 0u);
  EXPECT_EQ(closure.Find(2), 2u);
}

TEST(ShardLabelSpaceTest, BindingsReconcileThroughTidUnions) {
  GlobalClosure closure;
  ShardLabelSpace space(&closure);
  const uint32_t g0 = closure.NewId();
  const uint32_t g1 = closure.NewId();
  const uint32_t g2 = closure.NewId();

  space.Bind(10, g0);
  space.Bind(20, g1);
  space.Bind(30, g2);
  EXPECT_EQ(closure.num_entities(), 3u);

  // A shard-side merge of tids 10 and 20 must union their global ids.
  space.UnionTids(20, 10);
  EXPECT_EQ(closure.num_entities(), 2u);
  EXPECT_EQ(space.Lookup(10), space.Lookup(20));
  EXPECT_EQ(*space.Lookup(20), std::min(g0, g1));

  // Binding a second gid onto an already-bound component unions too
  // (a boundary replica landing on the component's tid).
  space.Bind(10, g2);
  EXPECT_EQ(closure.num_entities(), 1u);
  EXPECT_EQ(*space.Lookup(30), *space.Lookup(10));

  // Unbound tids have no global identity.
  EXPECT_FALSE(space.Lookup(999).has_value());

  // Replays are harmless.
  space.UnionTids(10, 20);
  space.Bind(30, g2);
  EXPECT_EQ(closure.num_entities(), 1u);
}

// --- Coordinator contract: shard-count invariance. ---

MatchServiceOptions SingleKeyEngine() {
  MatchServiceOptions options;
  options.engine.keys = {LastNameKey()};
  options.engine.window = 8;
  return options;
}

MatchService::TheoryFactory EmployeeFactory() {
  return [] { return std::make_unique<EmployeeTheory>(); };
}

TEST(CoordinatorTest, TwoShardPartitionEqualsSingleEngine) {
  MatchService shard0(SingleKeyEngine(), EmployeeFactory());
  MatchService shard1(SingleKeyEngine(), EmployeeFactory());
  ServerOptions server_options;
  server_options.port = 0;
  Server server0(server_options, &shard0);
  Server server1(server_options, &shard1);
  Result<uint16_t> port0 = server0.Start();
  Result<uint16_t> port1 = server1.Start();
  ASSERT_TRUE(port0.ok());
  ASSERT_TRUE(port1.ok());

  CoordinatorOptions coord_options;
  coord_options.shards = {{"127.0.0.1", *port0}, {"127.0.0.1", *port1}};
  coord_options.schema = employee::MakeSchema();
  coord_options.keys = {LastNameKey()};
  coord_options.window = 8;
  CoordService coord(std::move(coord_options));

  Dataset dataset = GenerateDataset(240, 20260809);
  ASSERT_TRUE(coord.SeedRouter(dataset.records()).ok());

  MatchService single(SingleKeyEngine(), EmployeeFactory());

  const size_t kBatch = 7;  // Deliberately not a divisor of 240.
  for (size_t begin = 0; begin < dataset.size(); begin += kBatch) {
    const size_t end = std::min(begin + kBatch, dataset.size());
    std::vector<Record> batch;
    std::vector<Record> replay;
    for (size_t i = begin; i < end; ++i) {
      batch.push_back(dataset.record(static_cast<TupleId>(i)));
      replay.push_back(dataset.record(static_cast<TupleId>(i)));
    }
    const std::string line = coord.HandleUpsert(nullptr, std::move(batch));
    Result<JsonValue> response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok());
    const JsonValue* ok = response->Find("ok");
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->bool_value()) << line;
    ASSERT_EQ(response->Find("entities")->size(), end - begin);
    ASSERT_TRUE(single.Upsert(std::move(replay)).ok());
  }

  single.Drain();
  const std::vector<uint32_t> expected = single.ComponentLabels();
  const std::vector<uint32_t> actual = coord.GlobalLabels();
  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual, expected);

  // The merged stats keep the global view: every record counted once
  // despite boundary replicas, per-shard sections nested under shards.
  const JsonValue extra = JsonValue::Object();
  Result<JsonValue> stats =
      ParseResponseLine(coord.HandleStats(nullptr, extra));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(static_cast<size_t>(stats->Find("records")->int_value()),
            dataset.size());
  ASSERT_NE(stats->Find("shards"), nullptr);
  EXPECT_EQ(stats->Find("shards")->size(), 2u);
  // The shards together hold at least every record once; replicas can
  // only add.
  uint64_t resident = 0;
  for (const JsonValue& shard : stats->Find("shards")->elements()) {
    resident += static_cast<uint64_t>(shard.Find("records")->int_value());
  }
  EXPECT_GE(resident, dataset.size());

  // A match through the coordinator resolves in the GLOBAL id space:
  // probing with an exact copy of record 0 must report record 0's own
  // global entity among the matched components.
  const std::string match_line =
      coord.HandleMatch(nullptr, {dataset.record(0)});
  Result<JsonValue> match = ParseResponseLine(match_line);
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->Find("ok")->bool_value());
  ASSERT_FALSE(match->Find("entity")->is_null());
  bool found = false;
  for (const JsonValue& e : match->Find("entities")->elements()) {
    if (static_cast<uint32_t>(e.int_value()) == actual[0]) found = true;
  }
  EXPECT_TRUE(found) << match_line;

  coord.Drain();
  server0.RequestDrain();
  server1.RequestDrain();
  server0.Join();
  server1.Join();
}

// --- Config handshake: a coordinator must refuse a mismatched fleet. ---

TEST(CoordinatorTest, HelloHandshakeVerifiesTopology) {
  MatchService shard(SingleKeyEngine(), EmployeeFactory());
  ServerOptions server_options;
  server_options.port = 0;
  server_options.topology_keys = CanonicalKeysSpec("last-name");
  server_options.topology_window = 8;
  Server server(server_options, &shard);
  Result<uint16_t> port = server.Start();
  ASSERT_TRUE(port.ok());

  CoordinatorOptions good;
  good.shards = {{"127.0.0.1", *port}};
  good.schema = employee::MakeSchema();
  good.keys = {LastNameKey()};
  good.keys_spec = CanonicalKeysSpec("Last-Name");  // Canonicalization.
  good.window = 8;
  {
    CoordService coord(std::move(good));
    EXPECT_TRUE(coord.VerifyShards().ok());
  }

  // Wrong window: the shard answers config_mismatch and the handshake
  // surfaces it as an error naming the shard.
  CoordinatorOptions bad_window;
  bad_window.shards = {{"127.0.0.1", *port}};
  bad_window.schema = employee::MakeSchema();
  bad_window.keys = {LastNameKey()};
  bad_window.keys_spec = CanonicalKeysSpec("last-name");
  bad_window.window = 9;
  bad_window.retry.max_attempts = 1;  // Mismatch is not retryable.
  {
    CoordService coord(std::move(bad_window));
    Status verified = coord.VerifyShards();
    ASSERT_FALSE(verified.ok());
    EXPECT_NE(verified.message().find("topology mismatch"),
              std::string::npos)
        << verified.ToString();
  }

  // Wrong keys likewise.
  CoordinatorOptions bad_keys;
  bad_keys.shards = {{"127.0.0.1", *port}};
  bad_keys.schema = employee::MakeSchema();
  bad_keys.keys = {FirstNameKey()};
  bad_keys.keys_spec = CanonicalKeysSpec("first-name");
  bad_keys.window = 8;
  bad_keys.retry.max_attempts = 1;
  {
    CoordService coord(std::move(bad_keys));
    EXPECT_FALSE(coord.VerifyShards().ok());
  }

  server.RequestDrain();
  server.Join();
}

// The hello op itself: answers the configured topology, rejects a
// mismatched probe with config_mismatch, and (unlike match/upsert)
// does not require the serving lifecycle.
TEST(CoordinatorTest, HelloOpReportsAndChecksTopology) {
  MatchService shard(SingleKeyEngine(), EmployeeFactory());
  ServerOptions server_options;
  server_options.port = 0;
  server_options.topology_keys = "last-name";
  server_options.topology_window = 8;
  Server server(server_options, &shard);
  Result<uint16_t> port = server.Start();
  ASSERT_TRUE(port.ok());

  ServiceClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", *port).ok());

  Result<JsonValue> bare = client.Call("{\"op\":\"hello\"}\n");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->Find("ok")->bool_value());
  EXPECT_EQ(bare->Find("keys")->string_value(), "last-name");
  EXPECT_EQ(bare->Find("window")->int_value(), 8);

  Result<JsonValue> mismatch =
      client.Call("{\"op\":\"hello\",\"keys\":\"last-name\",\"window\":4}\n");
  ASSERT_TRUE(mismatch.ok());
  EXPECT_FALSE(mismatch->Find("ok")->bool_value());
  EXPECT_EQ(mismatch->Find("error")->Find("code")->string_value(),
            "config_mismatch");

  client.Close();
  server.RequestDrain();
  server.Join();
}

}  // namespace
}  // namespace mergepurge
