// Window scanner + sorted-neighborhood method tests, including the
// property that a window of size N degenerates to the full quadratic scan.

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "core/naive_all_pairs.h"
#include "core/sorted_neighborhood.h"
#include "core/window_scanner.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

// A theory that matches records whose first field differs by at most 1
// numerically; lets tests control matching precisely.
class NumericTheory final : public EquationalTheory {
 public:
  bool Matches(const Record& a, const Record& b) const override {
    ++count_;
    long x = std::strtol(std::string(a.field(0)).c_str(), nullptr, 10);
    long y = std::strtol(std::string(b.field(0)).c_str(), nullptr, 10);
    return std::labs(x - y) <= 1;
  }
  std::string name() const override { return "numeric"; }
  uint64_t comparison_count() const override { return count_; }
  void reset_comparison_count() override { count_ = 0; }

 private:
  mutable uint64_t count_ = 0;
};

Dataset NumberDataset(const std::vector<int>& values) {
  Dataset d(Schema({"value"}));
  for (int v : values) d.Append(Record({std::to_string(v)}));
  return d;
}

TEST(WindowScannerTest, ComparesOnlyWithinWindow) {
  // Order 0..4, window 2: only adjacent comparisons -> 4 comparisons.
  Dataset d = NumberDataset({10, 20, 30, 40, 50});
  std::vector<TupleId> order = {0, 1, 2, 3, 4};
  NumericTheory theory;
  PairSet pairs;
  ScanStats stats = WindowScanner(2).Scan(d, order, theory, &pairs);
  EXPECT_EQ(stats.comparisons, 4u);
  EXPECT_EQ(pairs.size(), 0u);
}

TEST(WindowScannerTest, ComparisonCountFormula) {
  // For n records and window w: (n-1) + (n-2) + ... capped at w-1 each:
  // total = sum_{i=1}^{n-1} min(i, w-1).
  for (size_t n : {5u, 10u, 23u}) {
    for (size_t w : {2u, 4u, 7u}) {
      std::vector<int> values(n);
      std::iota(values.begin(), values.end(), 0);
      Dataset d = NumberDataset(values);
      std::vector<TupleId> order(n);
      std::iota(order.begin(), order.end(), 0);
      NumericTheory theory;
      PairSet pairs;
      ScanStats stats = WindowScanner(w).Scan(d, order, theory, &pairs);
      uint64_t expected = 0;
      for (size_t i = 1; i < n; ++i) {
        expected += std::min(i, w - 1);
      }
      EXPECT_EQ(stats.comparisons, expected) << "n=" << n << " w=" << w;
    }
  }
}

TEST(WindowScannerTest, FindsAdjacentMatches) {
  Dataset d = NumberDataset({1, 2, 10, 11, 30});
  std::vector<TupleId> order = {0, 1, 2, 3, 4};
  NumericTheory theory;
  PairSet pairs;
  WindowScanner(3).Scan(d, order, theory, &pairs);
  EXPECT_TRUE(pairs.Contains(0, 1));
  EXPECT_TRUE(pairs.Contains(2, 3));
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(WindowScannerTest, WindowTooSmallOrEmptyRangeIsNoop) {
  Dataset d = NumberDataset({1, 2});
  std::vector<TupleId> order = {0, 1};
  NumericTheory theory;
  PairSet pairs;
  EXPECT_EQ(WindowScanner(1).Scan(d, order, theory, &pairs).comparisons,
            0u);
  EXPECT_EQ(
      WindowScanner(3).ScanRange(d, order, 1, 1, theory, &pairs).comparisons,
      0u);
}

TEST(WindowScannerTest, FullWindowEqualsAllPairs) {
  // Window >= N makes SNM equivalent to the quadratic scan on the same
  // order.
  GeneratorConfig config;
  config.num_records = 60;
  config.duplicate_selection_rate = 0.5;
  config.seed = 21;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  ConditionEmployeeDataset(&db->dataset);

  EmployeeTheory theory;
  std::vector<TupleId> order(db->dataset.size());
  std::iota(order.begin(), order.end(), 0);
  PairSet window_pairs;
  WindowScanner(db->dataset.size() + 1)
      .Scan(db->dataset, order, theory, &window_pairs);

  PassResult naive = NaiveAllPairs().Run(db->dataset, theory);
  EXPECT_EQ(window_pairs.size(), naive.pairs.size());
  naive.pairs.ForEach([&window_pairs](TupleId a, TupleId b) {
    EXPECT_TRUE(window_pairs.Contains(a, b));
  });
}

TEST(SortedNeighborhoodTest, SortByKeyOrdersKeys) {
  GeneratorConfig config;
  config.num_records = 200;
  config.seed = 4;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  KeySpec key = LastNameKey();
  auto order = SortedNeighborhood::SortByKey(db->dataset, key);
  KeyBuilder builder(key);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(builder.BuildKey(db->dataset.record(order[i - 1])),
              builder.BuildKey(db->dataset.record(order[i])));
  }
}

TEST(SortedNeighborhoodTest, RejectsTinyWindow) {
  Dataset d = NumberDataset({1});
  NumericTheory theory;
  KeySpec key{"k", {KeyComponent::Full(0)}};
  EXPECT_FALSE(SortedNeighborhood(1).Run(d, key, theory).ok());
}

TEST(SortedNeighborhoodTest, RejectsInvalidKey) {
  Dataset d = NumberDataset({1});
  NumericTheory theory;
  KeySpec key{"k", {KeyComponent::Full(9)}};
  EXPECT_FALSE(SortedNeighborhood(5).Run(d, key, theory).ok());
}

TEST(SortedNeighborhoodTest, FindsPlantedDuplicates) {
  // Exact duplicates share identical keys, so they sort adjacent and any
  // window >= 2 finds them.
  Dataset d(employee::MakeSchema());
  Record r;
  r.set_field(employee::kSsn, "123456789");
  r.set_field(employee::kFirstName, "JOHN");
  r.set_field(employee::kLastName, "SMITH");
  r.set_field(employee::kAddress, "1 MAIN ST");
  r.set_field(employee::kCity, "NEW YORK");
  r.set_field(employee::kState, "NY");
  r.set_field(employee::kZip, "10027");
  TupleId a = d.Append(r);
  // Pad with unrelated records.
  for (int i = 0; i < 50; ++i) {
    Record filler;
    filler.set_field(employee::kSsn, std::to_string(100000000 + i * 37));
    filler.set_field(employee::kFirstName, "F" + std::to_string(i));
    filler.set_field(employee::kLastName,
                     std::string(1, 'A' + (i % 26)) + "XLNAME");
    filler.set_field(employee::kAddress, std::to_string(i) + " ELM ST");
    filler.set_field(employee::kCity, "CHICAGO");
    filler.set_field(employee::kState, "IL");
    filler.set_field(employee::kZip, "60601");
    d.Append(filler);
  }
  TupleId b = d.Append(r);

  EmployeeTheory theory;
  auto pass = SortedNeighborhood(2).Run(d, LastNameKey(), theory);
  ASSERT_TRUE(pass.ok());
  EXPECT_TRUE(pass->pairs.Contains(a, b));
}

TEST(SortedNeighborhoodTest, WiderWindowFindsAtLeastAsMuch) {
  GeneratorConfig config;
  config.num_records = 800;
  config.duplicate_selection_rate = 0.5;
  config.seed = 31;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  ConditionEmployeeDataset(&db->dataset);

  EmployeeTheory theory;
  auto narrow = SortedNeighborhood(3).Run(db->dataset, LastNameKey(),
                                          theory);
  auto wide = SortedNeighborhood(12).Run(db->dataset, LastNameKey(),
                                         theory);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(wide.ok());
  EXPECT_GE(wide->pairs.size(), narrow->pairs.size());
  // Every narrow pair is also found by the wide window (same sort order).
  narrow->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(wide->pairs.Contains(a, b));
  });
  EXPECT_GT(wide->comparisons, narrow->comparisons);
}

TEST(NaiveAllPairsTest, ComparisonCountIsQuadratic) {
  Dataset d = NumberDataset({1, 5, 9, 13});
  NumericTheory theory;
  PassResult result = NaiveAllPairs().Run(d, theory);
  EXPECT_EQ(result.comparisons, 6u);
  EXPECT_EQ(result.pairs.size(), 0u);
}

}  // namespace
}  // namespace mergepurge
