// SortMergeDetector: the merge-phase detection variant (§2.2 / [9]).
// Key property: its pair set is a superset of the classic SNM pass with
// the same window and key.

#include <gtest/gtest.h>

#include "core/sort_merge_detector.h"
#include "core/sorted_neighborhood.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

class SortMergeDetectorTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 900;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 4;
    config.seed = 404;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_P(SortMergeDetectorTest, SupersetOfClassicSnm) {
  const size_t w = GetParam();
  auto detector = SortMergeDetector(w).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(detector.ok()) << detector.status().ToString();
  auto snm = SortedNeighborhood(w).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(snm.ok());

  EXPECT_GE(detector->pairs.size(), snm->pairs.size());
  snm->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(detector->pairs.Contains(a, b))
        << "SNM pair (" << a << "," << b << ") missed by detector";
  });
}

TEST_P(SortMergeDetectorTest, AccuracyAtLeastClassicSnm) {
  const size_t w = GetParam();
  auto detector = SortMergeDetector(w).Run(dataset_, LastNameKey(), theory_);
  auto snm = SortedNeighborhood(w).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE(snm.ok());
  AccuracyReport detector_report =
      EvaluatePairSet(detector->pairs, dataset_.size(), truth_);
  AccuracyReport snm_report =
      EvaluatePairSet(snm->pairs, dataset_.size(), truth_);
  EXPECT_GE(detector_report.recall_percent, snm_report.recall_percent);
}

TEST_P(SortMergeDetectorTest, CostsMoreComparisons) {
  const size_t w = GetParam();
  auto detector = SortMergeDetector(w).Run(dataset_, LastNameKey(), theory_);
  auto snm = SortedNeighborhood(w).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(detector.ok());
  ASSERT_TRUE(snm.ok());
  // Detection at every merge level costs more than the single final scan.
  EXPECT_GT(detector->comparisons, snm->comparisons);
}

INSTANTIATE_TEST_SUITE_P(Windows, SortMergeDetectorTest,
                         ::testing::Values(2, 5, 10));

TEST(SortMergeDetectorEdgeTest, RejectsTinyWindow) {
  Dataset d(employee::MakeSchema());
  EmployeeTheory theory;
  EXPECT_FALSE(SortMergeDetector(1).Run(d, LastNameKey(), theory).ok());
}

TEST(SortMergeDetectorEdgeTest, EmptyAndSingleton) {
  Dataset d(employee::MakeSchema());
  EmployeeTheory theory;
  auto empty = SortMergeDetector(4).Run(d, LastNameKey(), theory);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->pairs.size(), 0u);

  Record r;
  r.set_field(employee::kLastName, "SMITH");
  d.Append(r);
  auto single = SortMergeDetector(4).Run(d, LastNameKey(), theory);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->pairs.size(), 0u);
  EXPECT_EQ(single->comparisons, 0u);
}

TEST(SortMergeDetectorEdgeTest, FindsPairSeparatedLate) {
  // Construct records where two matching records are adjacent mid-sort but
  // pushed apart in the final order by a crowd of interleaving keys. Use a
  // trivial numeric-style theory via the employee schema: match iff ssn
  // equal.
  Dataset d(employee::MakeSchema());
  auto add = [&d](const std::string& last, const std::string& ssn) {
    Record r;
    r.set_field(employee::kSsn, ssn);
    r.set_field(employee::kFirstName, "X");
    r.set_field(employee::kLastName, last);
    r.set_field(employee::kAddress, "1 A ST");
    return d.Append(r);
  };
  // The two matches: keys "AA" and "AZ".
  TupleId a = add("AA", "111111111");
  TupleId b = add("AZ", "111111111");
  // Crowd with keys between "AA" and "AZ" to push them w apart finally.
  for (int i = 0; i < 20; ++i) {
    add("AM" + std::string(1, 'A' + i), std::to_string(200000000 + i));
  }
  EmployeeTheory theory;
  const size_t w = 3;
  auto snm = SortedNeighborhood(w).Run(d, LastNameKey(), theory);
  auto detector = SortMergeDetector(w).Run(d, LastNameKey(), theory);
  ASSERT_TRUE(snm.ok());
  ASSERT_TRUE(detector.ok());
  // Final order separates a and b by ~20 positions: classic SNM misses.
  EXPECT_FALSE(snm->pairs.Contains(a, b));
  // Depending on merge order the detector may catch them while their runs
  // are small; at minimum it must not find fewer pairs than SNM.
  EXPECT_GE(detector->pairs.size(), snm->pairs.size());
}

}  // namespace
}  // namespace mergepurge
