// Tests for the util/sync.h capability-annotated lock wrappers. The
// interesting property — "unannotated guarded access fails to compile" —
// lives in tests/negative_compile/ (checked at configure time under
// clang); what is testable at runtime is that the wrappers actually
// exclude, that CondVar waits wake, and that ReaderLock admits concurrent
// readers while WriterLock excludes them. tools/ci.sh runs this binary
// under ThreadSanitizer, so a wrapper that silently failed to lock would
// surface as a data race here.

#include "util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mergepurge {
namespace {

TEST(MutexTest, MutexLockExcludesConcurrentIncrements) {
  Mutex mu;
  int64_t counter = 0;  // Guarded by mu (by construction of the test).
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  MutexLock lock(mu);
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockUnlockRelockWindow) {
  // The batcher/runner pattern: step outside the critical section
  // mid-scope, then re-enter. Another thread must be able to take the
  // lock during the window.
  Mutex mu;
  bool flag = false;

  MutexLock lock(mu);
  lock.Unlock();
  std::thread other([&mu, &flag] {
    MutexLock inner(mu);
    flag = true;
  });
  other.join();
  lock.Lock();
  EXPECT_TRUE(flag);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.WaitFor(mu, std::chrono::milliseconds(5)),
            std::cv_status::timeout);
}

TEST(CondVarTest, WaitUntilHonorsDeadline) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.WaitUntil(mu, deadline), std::cv_status::timeout);
  EXPECT_GE(std::chrono::steady_clock::now(), deadline);
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mu;
  int64_t value = 0;  // Guarded by mu.
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> max_concurrent_readers{0};
  constexpr int kWriters = 2;
  constexpr int kReaders = 6;
  constexpr int kRounds = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        WriterLock lock(mu);
        ++value;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      int64_t last = 0;
      for (int i = 0; i < kRounds; ++i) {
        ReaderLock lock(mu);
        int now = concurrent_readers.fetch_add(1) + 1;
        int seen = max_concurrent_readers.load();
        while (now > seen &&
               !max_concurrent_readers.compare_exchange_weak(seen, now)) {
        }
        // Reads under the shared lock must be monotone: a torn or racy
        // read would eventually violate this.
        EXPECT_GE(value, last);
        last = value;
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  WriterLock lock(mu);
  EXPECT_EQ(value, static_cast<int64_t>(kWriters) * kRounds);
  // Not guaranteed by the API, but with 6 readers hammering 2000 rounds
  // on a multicore box the shared mode overlapping at least once is as
  // certain as a scheduling assertion gets; it would be exactly 1 if
  // ReaderLock took the exclusive lock by mistake.
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(max_concurrent_readers.load(), 1);
  }
}

#if defined(MERGEPURGE_LOCK_ORDER_CHECKS)

// The runtime half of the deadlock defense (docs/concurrency.md): with
// lock-order checks compiled in, acquiring a lower rank while holding a
// higher one must abort the process — that ordering is one half of a
// potential deadlock cycle even if this particular run would not hang.
TEST(LockOrderDeathTest, InversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex high(lockrank::kWal);
        Mutex low(lockrank::kEngine);
        MutexLock hold_high(high);
        MutexLock inverted(low);
      },
      "lock-order inversion");
}

// Declared order (strictly increasing ranks) is silent, including across
// release: the validator tracks a stack, not a high-water mark.
TEST(LockOrderDeathTest, DeclaredOrderIsSilent) {
  Mutex engine(lockrank::kEngine);
  Mutex labels(lockrank::kLabels);
  Mutex wal(lockrank::kWal);
  {
    MutexLock a(engine);
    MutexLock b(labels);
  }
  {
    MutexLock a(engine);
    MutexLock c(wal);
  }
  // Re-acquiring a lower rank after releasing the higher one is fine.
  {
    MutexLock c(wal);
  }
  {
    MutexLock a(engine);
  }
}

// Unranked locks are invisible to the validator — legacy or leaf-local
// mutexes must not trip it in either direction.
TEST(LockOrderDeathTest, UnrankedLocksAreInvisible) {
  Mutex ranked(lockrank::kWal);
  Mutex unranked;
  MutexLock a(ranked);
  MutexLock b(unranked);
}

#endif  // MERGEPURGE_LOCK_ORDER_CHECKS

}  // namespace
}  // namespace mergepurge
