// Property tests over the text-processing layer: invariants that must
// hold for arbitrary inputs (normalization idempotence, phonetic code
// alphabet/shape, spell-correction budget, nickname-table reflexivity).

#include <cctype>
#include <string>

#include <gtest/gtest.h>

#include "text/edit_distance.h"
#include "text/nicknames.h"
#include "text/normalize.h"
#include "text/phonetic.h"
#include "text/spell.h"
#include "util/random.h"
#include "util/string_util.h"

namespace mergepurge {
namespace {

std::string RandomText(Rng* rng, size_t max_len) {
  static constexpr char kChars[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 "
      " .,'-/#@!";
  size_t len = rng->NextBounded(max_len + 1);
  std::string s;
  for (size_t i = 0; i < len; ++i) {
    s += kChars[rng->NextBounded(sizeof(kChars) - 1)];
  }
  return s;
}

class TextPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextPropertyTest, NormalizersAreIdempotent) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::string s = RandomText(&rng, 40);
    std::string basic = NormalizeBasic(s);
    EXPECT_EQ(NormalizeBasic(basic), basic) << "input: " << s;
    std::string name = NormalizeName(s);
    EXPECT_EQ(NormalizeName(name), name) << "input: " << s;
    std::string address = NormalizeAddress(s);
    EXPECT_EQ(NormalizeAddress(address), address) << "input: " << s;
    std::string digits = NormalizeDigits(s);
    EXPECT_EQ(NormalizeDigits(digits), digits) << "input: " << s;
  }
}

TEST_P(TextPropertyTest, NormalizeBasicOutputAlphabet) {
  Rng rng(GetParam() + 100);
  for (int trial = 0; trial < 500; ++trial) {
    std::string out = NormalizeBasic(RandomText(&rng, 40));
    for (size_t i = 0; i < out.size(); ++i) {
      char c = out[i];
      bool valid = (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                   c == ' ';
      EXPECT_TRUE(valid) << "char '" << c << "' in: " << out;
    }
    // No leading/trailing/double spaces.
    EXPECT_EQ(out.find("  "), std::string::npos);
    if (!out.empty()) {
      EXPECT_NE(out.front(), ' ');
      EXPECT_NE(out.back(), ' ');
    }
  }
}

TEST_P(TextPropertyTest, SoundexShape) {
  Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 500; ++trial) {
    std::string code = Soundex(RandomText(&rng, 25));
    if (code.empty()) continue;  // No letters in input.
    ASSERT_EQ(code.size(), 4u);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(code[0])));
    for (size_t i = 1; i < 4; ++i) {
      EXPECT_TRUE(code[i] >= '0' && code[i] <= '6') << code;
    }
  }
}

TEST_P(TextPropertyTest, SoundexInvariantToCaseAndSymbols) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 300; ++trial) {
    std::string s = RandomText(&rng, 20);
    std::string lowered;
    for (char c : s) {
      lowered += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    }
    EXPECT_EQ(Soundex(s), Soundex(lowered));
  }
}

TEST_P(TextPropertyTest, NysiisShape) {
  Rng rng(GetParam() + 400);
  for (int trial = 0; trial < 500; ++trial) {
    std::string code = Nysiis(RandomText(&rng, 25));
    EXPECT_LE(code.size(), 6u);
    for (char c : code) {
      EXPECT_TRUE(c >= 'A' && c <= 'Z') << code;
    }
  }
}

TEST_P(TextPropertyTest, SpellCorrectionStaysWithinBudget) {
  Rng rng(GetParam() + 500);
  // Small random corpus of "city" words.
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) {
    std::string word;
    size_t len = 4 + rng.NextBounded(10);
    for (size_t j = 0; j < len; ++j) {
      word += static_cast<char>('A' + rng.NextBounded(26));
    }
    corpus.push_back(word);
  }
  SpellCorrector corrector(corpus);
  for (int trial = 0; trial < 300; ++trial) {
    std::string word = RandomText(&rng, 16);
    std::string fixed = corrector.Correct(word);
    if (fixed == ToUpperAscii(word)) continue;  // Unchanged.
    // A correction must land in the corpus and within the edit budget.
    EXPECT_TRUE(corrector.Contains(fixed));
    int budget = ToUpperAscii(word).size() >= 6 ? 2 : 1;
    EXPECT_LE(DamerauDistance(ToUpperAscii(word), fixed), budget);
  }
}

TEST_P(TextPropertyTest, NicknameCanonicalizationIsIdempotent) {
  Rng rng(GetParam() + 600);
  const NicknameTable& table = NicknameTable::Default();
  for (int trial = 0; trial < 300; ++trial) {
    std::string name = RandomText(&rng, 12);
    std::string canon = table.Canonicalize(name);
    EXPECT_EQ(table.Canonicalize(canon), canon);
    EXPECT_TRUE(table.SameCanonicalName(name, name));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextPropertyTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mergepurge
