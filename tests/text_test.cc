#include <gtest/gtest.h>

#include "text/keyboard_distance.h"
#include "text/nicknames.h"
#include "text/normalize.h"
#include "text/phonetic.h"
#include "text/spell.h"

namespace mergepurge {
namespace {

// --- Keyboard distance. ---

TEST(KeyboardTest, AdjacencyOnQwerty) {
  EXPECT_TRUE(AreKeysAdjacent('q', 'w'));
  EXPECT_TRUE(AreKeysAdjacent('a', 'q'));
  EXPECT_TRUE(AreKeysAdjacent('g', 'h'));
  EXPECT_TRUE(AreKeysAdjacent('G', 'h'));  // Case-insensitive.
  EXPECT_FALSE(AreKeysAdjacent('q', 'p'));
  EXPECT_FALSE(AreKeysAdjacent('a', 'a'));
  EXPECT_FALSE(AreKeysAdjacent('a', '-'));
}

TEST(KeyboardTest, NeighborKeyIsAdjacent) {
  for (unsigned i = 0; i < 8; ++i) {
    char n = NeighborKey('g', i);
    EXPECT_TRUE(AreKeysAdjacent('g', n)) << n;
  }
  EXPECT_EQ(NeighborKey('-', 0), '-');  // No neighbours -> unchanged.
}

TEST(KeyboardTest, NeighborKeyPreservesCase) {
  char n = NeighborKey('G', 0);
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(n)));
}

TEST(KeyboardTest, SubstitutionCosts) {
  EXPECT_DOUBLE_EQ(KeyboardSubstitutionCost('a', 'a'), 0.0);
  EXPECT_DOUBLE_EQ(KeyboardSubstitutionCost('a', 'A'), 0.0);
  EXPECT_DOUBLE_EQ(KeyboardSubstitutionCost('q', 'w'), 0.5);
  EXPECT_DOUBLE_EQ(KeyboardSubstitutionCost('q', 'p'), 1.0);
}

TEST(KeyboardTest, AdjacentTypoCheaperThanDistantTypo) {
  // SMITH with adjacent-key typo vs distant-key typo.
  double adjacent = KeyboardDistance("SMITH", "SMUTH");  // i->u adjacent.
  double distant = KeyboardDistance("SMITH", "SMQTH");   // i->q distant.
  EXPECT_LT(adjacent, distant);
}

TEST(KeyboardTest, SimilarityBounds) {
  EXPECT_DOUBLE_EQ(KeyboardSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(KeyboardSimilarity("abc", "abc"), 1.0);
  EXPECT_GE(KeyboardSimilarity("abc", "xyz"), 0.0);
}

// --- Phonetic codes. ---

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EmptyAndSymbols) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBRIEN"));
}

TEST(SoundexTest, CaseInsensitive) {
  EXPECT_EQ(Soundex("smith"), Soundex("SMITH"));
}

TEST(SoundsAlikeTest, Soundex) {
  EXPECT_TRUE(SoundsAlikeSoundex("Smith", "Smyth"));
  EXPECT_FALSE(SoundsAlikeSoundex("Smith", "Jones"));
  EXPECT_FALSE(SoundsAlikeSoundex("", ""));
}

TEST(NysiisTest, KnownBehaviour) {
  // NYSIIS maps sound-alike surnames together.
  EXPECT_EQ(Nysiis("KNIGHT"), Nysiis("NIGHT"));
  EXPECT_EQ(Nysiis("PHILLIP"), Nysiis("FILLIP"));
  EXPECT_FALSE(Nysiis("MACDONALD").empty());
  EXPECT_EQ(Nysiis(""), "");
  EXPECT_LE(Nysiis("WORTHINGTONSMYTHE").size(), 6u);
}

TEST(NysiisTest, SameNameSameCode) {
  EXPECT_TRUE(SoundsAlikeNysiis("BROWN", "BRAUN"));
  EXPECT_FALSE(SoundsAlikeNysiis("", ""));
}

// --- Normalization. ---

TEST(NormalizeTest, BasicCollapsesAndUppercases) {
  EXPECT_EQ(NormalizeBasic("  john   q.  smith "), "JOHN Q SMITH");
  EXPECT_EQ(NormalizeBasic("O'Brien"), "OBRIEN");
  EXPECT_EQ(NormalizeBasic("first-second"), "FIRST SECOND");
  EXPECT_EQ(NormalizeBasic(""), "");
}

TEST(NormalizeTest, NameStripsSalutationsAndSuffixes) {
  EXPECT_EQ(NormalizeName("Mr. John Smith"), "JOHN SMITH");
  EXPECT_EQ(NormalizeName("John Smith Jr"), "JOHN SMITH");
  EXPECT_EQ(NormalizeName("DR SMITH III"), "SMITH");
  // A name that is ONLY a suffix token survives.
  EXPECT_EQ(NormalizeName("Jr"), "JR");
}

TEST(NormalizeTest, AddressCanonicalizesStreetTypes) {
  EXPECT_EQ(NormalizeAddress("123 Main Street"), "123 MAIN ST");
  EXPECT_EQ(NormalizeAddress("9 North Oak Avenue"), "9 N OAK AVE");
  EXPECT_EQ(NormalizeAddress("12 ELM BOULEVARD"), "12 ELM BLVD");
}

TEST(NormalizeTest, DigitsKeepsOnlyDigits) {
  EXPECT_EQ(NormalizeDigits("123-45-6789"), "123456789");
  EXPECT_EQ(NormalizeDigits("abc"), "");
}

TEST(NormalizeTest, ConditionEmployeeDataset) {
  Dataset d(employee::MakeSchema());
  Record r;
  r.set_field(employee::kSsn, "123-45-6789");
  r.set_field(employee::kFirstName, "mr. bob");
  r.set_field(employee::kInitial, "q.");
  r.set_field(employee::kLastName, "o'brien jr");
  r.set_field(employee::kAddress, "12 oak street");
  r.set_field(employee::kApartment, "apartment 9");
  r.set_field(employee::kCity, "new york");
  r.set_field(employee::kState, "ny");
  r.set_field(employee::kZip, "10027-1234");
  d.Append(std::move(r));

  ConditionEmployeeDataset(&d);
  const Record& c = d.record(0);
  EXPECT_EQ(c.field(employee::kSsn), "123456789");
  EXPECT_EQ(c.field(employee::kFirstName), "BOB");
  EXPECT_EQ(c.field(employee::kInitial), "Q");
  EXPECT_EQ(c.field(employee::kLastName), "OBRIEN");
  EXPECT_EQ(c.field(employee::kAddress), "12 OAK ST");
  EXPECT_EQ(c.field(employee::kApartment), "APT 9");
  EXPECT_EQ(c.field(employee::kCity), "NEW YORK");
  EXPECT_EQ(c.field(employee::kState), "NY");
  EXPECT_EQ(c.field(employee::kZip), "100271234");
}

// --- Nicknames. ---

TEST(NicknameTest, PaperExampleJosephGiuseppe) {
  const NicknameTable& table = NicknameTable::Default();
  EXPECT_TRUE(table.SameCanonicalName("JOSEPH", "GIUSEPPE"));
  EXPECT_EQ(table.Canonicalize("Giuseppe"), "JOSEPH");
}

TEST(NicknameTest, CommonDiminutives) {
  const NicknameTable& table = NicknameTable::Default();
  EXPECT_TRUE(table.SameCanonicalName("BOB", "ROBERT"));
  EXPECT_TRUE(table.SameCanonicalName("Bill", "william"));
  EXPECT_TRUE(table.SameCanonicalName("LIZ", "BETTY"));
  EXPECT_FALSE(table.SameCanonicalName("BOB", "WILLIAM"));
}

TEST(NicknameTest, UnknownNamesPassThrough) {
  const NicknameTable& table = NicknameTable::Default();
  EXPECT_EQ(table.Canonicalize("XAVIERA"), "XAVIERA");
  EXPECT_TRUE(table.SameCanonicalName("XAVIERA", "xaviera"));
}

TEST(NicknameTest, CustomTable) {
  NicknameTable table;
  table.AddGroup("ALPHA", {"AL", "ALF"});
  EXPECT_TRUE(table.SameCanonicalName("al", "ALF"));
  EXPECT_EQ(table.Canonicalize("ALPHA"), "ALPHA");
}

// --- Spelling correction. ---

TEST(SpellTest, CorrectsSingleTypo) {
  SpellCorrector corrector({"CHICAGO", "HOUSTON", "PHOENIX", "DALLAS"});
  EXPECT_EQ(corrector.Correct("CHICAGP"), "CHICAGO");
  EXPECT_EQ(corrector.Correct("HOUSTONN"), "HOUSTON");
  EXPECT_EQ(corrector.Correct("PHEONIX"), "PHOENIX");  // Transposition.
}

TEST(SpellTest, ExactWordUnchanged) {
  SpellCorrector corrector({"CHICAGO"});
  EXPECT_EQ(corrector.Correct("chicago"), "CHICAGO");
  EXPECT_TRUE(corrector.Contains("Chicago"));
}

TEST(SpellTest, FarWordUnchanged) {
  SpellCorrector corrector({"CHICAGO"});
  EXPECT_EQ(corrector.Correct("ZZZZZZ"), "ZZZZZZ");
}

TEST(SpellTest, AmbiguousTieNotCorrected) {
  // DALE is distance 1 from both DALT and DALP's nearest... construct a
  // true tie: "CAT" vs corpus {"CAR", "CAP"}: both at distance 1.
  SpellCorrector corrector({"CAR", "CAP"});
  EXPECT_EQ(corrector.Correct("CAT"), "CAT");
}

TEST(SpellTest, EmptyInput) {
  SpellCorrector corrector({"X"});
  EXPECT_EQ(corrector.Correct(""), "");
}

TEST(SpellTest, ShortWordsGetSmallBudget) {
  SpellCorrector corrector({"OHIO"});
  EXPECT_EQ(corrector.Correct("OHIP"), "OHIO");   // 1 edit, allowed.
  EXPECT_EQ(corrector.Correct("AHIP"), "AHIP");   // 2 edits on short word.
}

}  // namespace
}  // namespace mergepurge
