// Property tests over the equational theories: symmetry, the bounded
// threshold fast path vs the exact similarity, phonetic key behaviour, and
// determinism of the whole engine.

#include <string>

#include <gtest/gtest.h>

#include "core/merge_purge.h"
#include "core/sorted_neighborhood.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/random.h"

namespace mergepurge {
namespace {

class TheoryPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 400;
    config.duplicate_selection_rate = 0.6;
    config.seed = GetParam();
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
};

TEST_P(TheoryPropertyTest, MatchesIsSymmetric) {
  EmployeeTheory theory;
  Rng rng(GetParam() * 31);
  const size_t n = dataset_.size();
  for (int trial = 0; trial < 2000; ++trial) {
    TupleId a = static_cast<TupleId>(rng.NextBounded(n));
    TupleId b = static_cast<TupleId>(rng.NextBounded(n));
    EXPECT_EQ(theory.Matches(dataset_.record(a), dataset_.record(b)),
              theory.Matches(dataset_.record(b), dataset_.record(a)))
        << dataset_.record(a).DebugString() << " vs "
        << dataset_.record(b).DebugString();
  }
}

TEST_P(TheoryPropertyTest, MatchesIsReflexive) {
  EmployeeTheory theory;
  for (size_t t = 0; t < dataset_.size(); t += 7) {
    EXPECT_TRUE(theory.Matches(dataset_.record(static_cast<TupleId>(t)),
                               dataset_.record(static_cast<TupleId>(t))));
  }
}

TEST_P(TheoryPropertyTest, BoundedThresholdMatchesExactSimilarity) {
  // SimilarityAtLeast must agree with Similarity() >= t on every boundary.
  for (auto distance : {EmployeeTheoryOptions::Distance::kEdit,
                        EmployeeTheoryOptions::Distance::kDamerau,
                        EmployeeTheoryOptions::Distance::kKeyboard}) {
    EmployeeTheoryOptions options;
    options.distance = distance;
    EmployeeTheory theory(options);
    Rng rng(GetParam() * 57 + 1);
    for (int trial = 0; trial < 1500; ++trial) {
      // Random short strings over a tiny alphabet to hit boundaries often.
      auto make = [&rng] {
        std::string s;
        size_t len = rng.NextBounded(12);
        for (size_t i = 0; i < len; ++i) {
          s += static_cast<char>('A' + rng.NextBounded(3));
        }
        return s;
      };
      std::string x = make();
      std::string y = make();
      for (double threshold : {0.0, 0.5, 0.7, 0.75, 0.8, 0.9, 1.0}) {
        EXPECT_EQ(theory.SimilarityAtLeast(x, y, threshold),
                  theory.Similarity(x, y) >= threshold)
            << "x=" << x << " y=" << y << " t=" << threshold;
      }
    }
  }
}

TEST_P(TheoryPropertyTest, EngineIsDeterministic) {
  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 6;
  MergePurgeEngine engine(options);
  EmployeeTheory theory;
  auto first = engine.Run(dataset_, theory);
  auto second = engine.Run(dataset_, theory);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->component_of, second->component_of);
  EXPECT_EQ(first->num_entities, second->num_entities);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoryPropertyTest,
                         ::testing::Values(5, 6, 7));

TEST(PhoneticKeyTest, SoundexComponentIsFixedWidthAndTypoInvariant) {
  KeySpec spec = PhoneticLastNameKey();
  KeyBuilder builder(spec);

  Record a;
  a.set_field(employee::kLastName, "SMITH");
  a.set_field(employee::kFirstName, "JOHN");
  a.set_field(employee::kSsn, "123456789");
  Record b = a;
  b.set_field(employee::kLastName, "SMYTH");  // Typo, same Soundex.

  std::string key_a = builder.BuildKey(a);
  std::string key_b = builder.BuildKey(b);
  // The phonetic prefix (first 4 chars) is identical despite the typo.
  EXPECT_EQ(key_a.substr(0, 4), key_b.substr(0, 4));
  EXPECT_EQ(key_a.substr(0, 4), "S530");
}

TEST(PhoneticKeyTest, PhoneticKeySurvivesPrincipalFieldTypo) {
  // A typo in the FIRST letter of the last name destroys the plain
  // last-name ordering but not always the phonetic one... demonstrate the
  // complementary case the multi-pass approach exploits: vowel typos leave
  // Soundex unchanged entirely.
  KeyBuilder plain(LastNameKey());
  KeyBuilder phonetic(PhoneticLastNameKey());
  Record a;
  a.set_field(employee::kLastName, "JOHNSON");
  a.set_field(employee::kFirstName, "MARY");
  a.set_field(employee::kSsn, "111223333");
  Record b = a;
  b.set_field(employee::kLastName, "JIHNSON");  // o->i vowel typo.

  EXPECT_NE(plain.BuildKey(a).substr(0, 4), plain.BuildKey(b).substr(0, 4));
  EXPECT_EQ(phonetic.BuildKey(a).substr(0, 4),
            phonetic.BuildKey(b).substr(0, 4));
}

TEST(PhoneticKeyTest, UsableAsExtraMultipassKey) {
  GeneratorConfig config;
  config.num_records = 600;
  config.duplicate_selection_rate = 0.5;
  config.seed = 97;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  ConditionEmployeeDataset(&db->dataset);
  EmployeeTheory theory;
  auto pass = SortedNeighborhood(8).Run(db->dataset, PhoneticLastNameKey(),
                                        theory);
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  AccuracyReport report =
      EvaluatePairSet(pass->pairs, db->dataset.size(), db->truth);
  EXPECT_GT(report.recall_percent, 30.0);
}

}  // namespace
}  // namespace mergepurge
