#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/pair_set.h"
#include "core/union_find.h"
#include "util/random.h"

namespace mergepurge {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // Already together.
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.NumSets(), 2u);
  EXPECT_TRUE(uf.SameSet(0, 1));
  EXPECT_FALSE(uf.SameSet(0, 2));
  EXPECT_TRUE(uf.Union(0, 3));
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SetSize(2), 4u);
}

TEST(UnionFindTest, TransitivityChain) {
  UnionFind uf(100);
  for (uint32_t i = 0; i + 1 < 100; ++i) uf.Union(i, i + 1);
  EXPECT_TRUE(uf.SameSet(0, 99));
  EXPECT_EQ(uf.NumSets(), 1u);
}

TEST(UnionFindTest, ComponentLabelsConsistent) {
  UnionFind uf(6);
  uf.Union(0, 2);
  uf.Union(2, 4);
  uf.Union(1, 5);
  auto labels = uf.ComponentLabels();
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[0], labels[4]);
  EXPECT_EQ(labels[1], labels[5]);
  EXPECT_NE(labels[0], labels[1]);
  EXPECT_NE(labels[3], labels[0]);
  EXPECT_NE(labels[3], labels[1]);
}

// Property: union-find agrees with a brute-force equivalence relation.
class UnionFindPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const uint32_t n = 60;
  UnionFind uf(n);
  // Brute force: map element -> set id, merge by relabeling.
  std::vector<uint32_t> label(n);
  for (uint32_t i = 0; i < n; ++i) label[i] = i;

  for (int op = 0; op < 200; ++op) {
    uint32_t a = static_cast<uint32_t>(rng.NextBounded(n));
    uint32_t b = static_cast<uint32_t>(rng.NextBounded(n));
    uf.Union(a, b);
    uint32_t from = label[b], to = label[a];
    for (uint32_t i = 0; i < n; ++i) {
      if (label[i] == from) label[i] = to;
    }
    // Spot-check consistency after each mutation on a few pairs.
    for (int check = 0; check < 10; ++check) {
      uint32_t x = static_cast<uint32_t>(rng.NextBounded(n));
      uint32_t y = static_cast<uint32_t>(rng.NextBounded(n));
      ASSERT_EQ(uf.SameSet(x, y), label[x] == label[y]);
    }
  }
  // Set sizes agree.
  std::map<uint32_t, uint32_t> sizes;
  for (uint32_t i = 0; i < n; ++i) ++sizes[label[i]];
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(uf.SetSize(i), sizes[label[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(PairSetTest, AddAndContains) {
  PairSet pairs;
  EXPECT_TRUE(pairs.Add(3, 7));
  EXPECT_FALSE(pairs.Add(7, 3));  // Unordered: same pair.
  EXPECT_TRUE(pairs.Contains(3, 7));
  EXPECT_TRUE(pairs.Contains(7, 3));
  EXPECT_FALSE(pairs.Contains(3, 8));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(PairSetTest, SelfPairsIgnored) {
  PairSet pairs;
  EXPECT_FALSE(pairs.Add(5, 5));
  EXPECT_FALSE(pairs.Contains(5, 5));
  EXPECT_TRUE(pairs.empty());
}

TEST(PairSetTest, MergeUnions) {
  PairSet a, b;
  a.Add(1, 2);
  b.Add(2, 3);
  b.Add(1, 2);
  a.Merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.Contains(2, 3));
}

TEST(PairSetTest, ToSortedVectorIsSortedAndNormalized) {
  PairSet pairs;
  pairs.Add(9, 1);
  pairs.Add(2, 3);
  pairs.Add(0, 5);
  auto v = pairs.ToSortedVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], std::make_pair(TupleId{0}, TupleId{5}));
  EXPECT_EQ(v[1], std::make_pair(TupleId{1}, TupleId{9}));
  EXPECT_EQ(v[2], std::make_pair(TupleId{2}, TupleId{3}));
  for (const auto& [lo, hi] : v) EXPECT_LT(lo, hi);
}

TEST(PairSetTest, ForEachVisitsAll) {
  PairSet pairs;
  pairs.Add(1, 2);
  pairs.Add(3, 4);
  std::set<std::pair<TupleId, TupleId>> seen;
  pairs.ForEach([&seen](TupleId a, TupleId b) { seen.emplace(a, b); });
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace mergepurge
