#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace mergepurge {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad window");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad window");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingStep() { return Status::IoError("disk"); }
Status UsesReturnMacro() {
  MERGEPURGE_RETURN_NOT_OK(FailingStep());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(UsesReturnMacro().code(), StatusCode::kIoError);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.25)) ++hits;
  }
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 2);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.Fork();
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("MiXeD 42"), "mixed 42");
  EXPECT_EQ(ToUpperAscii("MiXeD 42"), "MIXED 42");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimAscii("  a b  "), "a b");
  EXPECT_EQ(TrimAscii("\t\n"), "");
  EXPECT_EQ(TrimAscii("x"), "x");
}

TEST(StringUtilTest, SplitPreservesEmptyFields) {
  auto parts = SplitView("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123456789"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Smith", "sMITH"));
  EXPECT_FALSE(EqualsIgnoreCase("Smith", "Smiths"));
}

TEST(StringUtilTest, PrefixClamps) {
  EXPECT_EQ(Prefix("abcdef", 3), "abc");
  EXPECT_EQ(Prefix("ab", 5), "ab");
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace mergepurge
