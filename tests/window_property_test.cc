// Scanner-level property tests for the figure-5 band invariant: the union
// of window scans over ANY fragmentation whose fragments overlap by w-1
// and whose fresh regions tile the order equals the global window scan —
// for arbitrary (n, w, P) combinations, not just the executors' defaults.

#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "core/window_scanner.h"
#include "gen/generator.h"
#include "parallel/coordinator.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/random.h"

namespace mergepurge {
namespace {

// Deterministic theory on tuple ids: matches when ids are congruent mod k.
// Exercises the scanner without string costs and with dense matches.
class ModTheory final : public EquationalTheory {
 public:
  explicit ModTheory(TupleId k) : k_(k) {}
  bool Matches(const Record& a, const Record& b) const override {
    ++count_;
    auto value = [](const Record& r) {
      return std::strtoul(std::string(r.field(0)).c_str(), nullptr, 10);
    };
    return value(a) % k_ == value(b) % k_;
  }
  std::string name() const override { return "mod"; }
  uint64_t comparison_count() const override { return count_; }
  void reset_comparison_count() override { count_ = 0; }

 private:
  TupleId k_;
  mutable uint64_t count_ = 0;
};

Dataset IdDataset(size_t n) {
  Dataset d(Schema({"id"}));
  for (size_t i = 0; i < n; ++i) d.Append(Record({std::to_string(i)}));
  return d;
}

using GridParam = std::tuple<size_t /*n*/, size_t /*w*/, size_t /*p*/>;

class BandInvariantTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(BandInvariantTest, OverlappingFragmentsReproduceGlobalScan) {
  auto [n, w, p] = GetParam();
  Dataset d = IdDataset(n);
  // Shuffled order so fragments cut through arbitrary neighborhoods.
  std::vector<TupleId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(n * 31 + w * 7 + p);
  for (size_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }

  ModTheory theory(5);
  WindowScanner scanner(w);
  PairSet global;
  scanner.Scan(d, order, theory, &global);

  PairSet fragmented;
  for (const Fragment& fragment : MakeOverlappingFragments(n, p, w)) {
    scanner.ScanRange(d, order, fragment.begin, fragment.end, theory,
                      &fragmented);
  }
  EXPECT_EQ(fragmented.size(), global.size())
      << "n=" << n << " w=" << w << " p=" << p;
  global.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(fragmented.Contains(a, b));
  });
  // And nothing extra.
  fragmented.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(global.Contains(a, b));
  });
}

TEST_P(BandInvariantTest, BlockCyclicReproducesGlobalScan) {
  auto [n, w, p] = GetParam();
  Dataset d = IdDataset(n);
  std::vector<TupleId> order(n);
  std::iota(order.begin(), order.end(), 0);

  ModTheory theory(7);
  WindowScanner scanner(w);
  PairSet global;
  scanner.Scan(d, order, theory, &global);

  // Deliberately small blocks (clamped internally to 2*(w-1)).
  PairSet fragmented;
  for (const auto& site : MakeBlockCyclicFragments(n, p, w + 3, w)) {
    for (const Fragment& block : site) {
      scanner.ScanRange(d, order, block.begin, block.end, theory,
                        &fragmented);
    }
  }
  EXPECT_EQ(fragmented.size(), global.size())
      << "n=" << n << " w=" << w << " p=" << p;
  global.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(fragmented.Contains(a, b));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BandInvariantTest,
    ::testing::Combine(::testing::Values(1u, 2u, 7u, 50u, 173u),
                       ::testing::Values(2u, 3u, 8u),
                       ::testing::Values(1u, 2u, 5u, 16u)));

}  // namespace
}  // namespace mergepurge
