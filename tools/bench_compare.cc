// bench_compare — the CI latency-regression gate.
//
//   bench_compare --baseline=bench/baselines/BENCH_service.json \
//                 --fresh=BENCH_service.json \
//                 --metric=config/summary/latency_request/p50_us \
//                 --max-regress-pct=25
//
// Resolves the same '/'-separated numeric path in both documents
// (lower is better: a latency or seconds-per-run figure) and exits 1 if
// the fresh value exceeds baseline * (1 + max-regress-pct/100). An
// IMPROVEMENT beyond the same margin exits 0 but prints a reminder to
// re-baseline, so the enforced budget ratchets down instead of going
// stale. Used by tools/ci.sh against the committed baselines in
// bench/baselines/ (see ROADMAP "latency regression gate").
//
// Exit codes: 0 within budget, 1 regression (or unreadable inputs),
// 2 usage error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr const char* kUsage =
    "usage: bench_compare --baseline=old.json --fresh=new.json \\\n"
    "                     --metric=key/path [--max-regress-pct=25]\n"
    "  The metric must resolve to a number in both files; lower is "
    "better.";

// Loads `file` and resolves `path` ("a/b/c") to a number.
bool LoadMetric(const std::string& file, const std::string& path,
                double* out) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", file.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<JsonValue> doc = JsonValue::Parse(text.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", file.c_str(),
                 doc.status().ToString().c_str());
    return false;
  }
  const JsonValue* node = &*doc;
  for (std::string_view key : SplitView(path, '/')) {
    if (!node->is_object()) {
      std::fprintf(stderr, "bench_compare: %s: '%s' hits a non-object\n",
                   file.c_str(), path.c_str());
      return false;
    }
    const JsonValue* child = node->Find(key);
    if (child == nullptr) {
      std::fprintf(stderr, "bench_compare: %s: missing '%s'\n",
                   file.c_str(), path.c_str());
      return false;
    }
    node = child;
  }
  if (!node->is_number()) {
    std::fprintf(stderr, "bench_compare: %s: '%s' is not a number\n",
                 file.c_str(), path.c_str());
    return false;
  }
  *out = node->double_value();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_file;
  std::string fresh_file;
  std::string metric;
  double max_regress_pct = 25.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_file = arg.substr(11);
    } else if (arg.rfind("--fresh=", 0) == 0) {
      fresh_file = arg.substr(8);
    } else if (arg.rfind("--metric=", 0) == 0) {
      metric = arg.substr(9);
    } else if (arg.rfind("--max-regress-pct=", 0) == 0) {
      char* end = nullptr;
      const std::string value = arg.substr(18);
      max_regress_pct = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || max_regress_pct < 0) {
        std::fprintf(stderr, "bench_compare: bad --max-regress-pct=%s\n%s\n",
                     value.c_str(), kUsage);
        return 2;
      }
    } else {
      std::fprintf(stderr, "bench_compare: unknown argument %s\n%s\n",
                   arg.c_str(), kUsage);
      return 2;
    }
  }
  if (baseline_file.empty() || fresh_file.empty() || metric.empty()) {
    std::fprintf(stderr,
                 "bench_compare: need --baseline=, --fresh= and "
                 "--metric=\n%s\n",
                 kUsage);
    return 2;
  }

  double baseline = 0.0;
  double fresh = 0.0;
  if (!LoadMetric(baseline_file, metric, &baseline) ||
      !LoadMetric(fresh_file, metric, &fresh)) {
    return 1;
  }
  if (baseline <= 0.0) {
    std::fprintf(stderr,
                 "bench_compare: baseline %s = %g is not positive; "
                 "re-generate the baseline\n",
                 metric.c_str(), baseline);
    return 1;
  }

  const double change_pct = 100.0 * (fresh - baseline) / baseline;
  const double budget = baseline * (1.0 + max_regress_pct / 100.0);
  if (fresh > budget) {
    std::fprintf(stderr,
                 "bench_compare: REGRESSION %s: baseline %g -> fresh %g "
                 "(%+.1f%%, budget +%.0f%%)\n",
                 metric.c_str(), baseline, fresh, change_pct,
                 max_regress_pct);
    return 1;
  }
  std::printf("bench_compare: %s: baseline %g -> fresh %g (%+.1f%%) ok\n",
              metric.c_str(), baseline, fresh, change_pct);
  if (fresh < baseline * (1.0 - max_regress_pct / 100.0)) {
    std::printf(
        "bench_compare: improvement beyond the gate margin — consider "
        "committing the fresh numbers as the new baseline\n");
  }
  return 0;
}
