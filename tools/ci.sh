#!/bin/sh
# Tier-1 CI: build and run the full test suite twice — once plain, once
# with AddressSanitizer + UndefinedBehaviorSanitizer — so data races on
# the retry/speculation paths and lifetime bugs in the checkpoint code
# surface before merge.
#
# Usage: tools/ci.sh [jobs]      (from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
  build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${root}" "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite "${root}/build" -DMERGEPURGE_SANITIZE=""
run_suite "${root}/build-san" "-DMERGEPURGE_SANITIZE=address;undefined"

# End-to-end observability contract: a generated CLI run must produce a
# run report and a Chrome trace whose required keys all resolve
# (docs/observability.md documents both schemas).
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
echo "=== obs e2e (${obs_dir}) ==="
"${root}/build/tools/mergepurge" --gen=2000 --output="${obs_dir}/out.csv" \
  --metrics-out="${obs_dir}/metrics.json" \
  --trace-out="${obs_dir}/trace.json" --progress --log-level=info
"${root}/build/tools/validate_report" --file="${obs_dir}/metrics.json" \
  passes closure outcome \
  counters/snm.windows counters/snm.comparisons counters/snm.matches \
  counters/closure.unions counters/resilient.retries \
  counters/faults.tripped histograms/snm.scan_us histograms/closure.us
"${root}/build/tools/validate_report" --file="${obs_dir}/trace.json" \
  traceEvents displayTimeUnit

echo "ci: plain and sanitized suites passed; obs e2e validated"
