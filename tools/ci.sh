#!/bin/sh
# Tier-1 CI: build and run the full test suite twice — once plain, once
# with AddressSanitizer + UndefinedBehaviorSanitizer — so data races on
# the retry/speculation paths and lifetime bugs in the checkpoint code
# surface before merge.
#
# Usage: tools/ci.sh [jobs]      (from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
  build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${root}" "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite "${root}/build" -DMERGEPURGE_SANITIZE=""
run_suite "${root}/build-san" "-DMERGEPURGE_SANITIZE=address;undefined"

# End-to-end observability contract: a generated CLI run must produce a
# run report and a Chrome trace whose required keys all resolve
# (docs/observability.md documents both schemas).
obs_dir="$(mktemp -d)"
trap 'rm -rf "${obs_dir}"' EXIT
echo "=== obs e2e (${obs_dir}) ==="
"${root}/build/tools/mergepurge" --gen=2000 --output="${obs_dir}/out.csv" \
  --metrics-out="${obs_dir}/metrics.json" \
  --trace-out="${obs_dir}/trace.json" --progress --log-level=info
"${root}/build/tools/validate_report" --file="${obs_dir}/metrics.json" \
  passes closure outcome \
  counters/snm.windows counters/snm.comparisons counters/snm.matches \
  counters/closure.unions counters/resilient.retries \
  counters/faults.tripped histograms/snm.scan_us histograms/closure.us
"${root}/build/tools/validate_report" --file="${obs_dir}/trace.json" \
  traceEvents displayTimeUnit

# Service e2e: serve on an ephemeral loopback port, drive a >=10k-record
# match+upsert mix with the loadgen, validate both run reports, then
# SIGTERM the server and require a clean (exit 0) graceful drain
# (docs/service.md documents the protocol and drain semantics).
svc_dir="$(mktemp -d)"
echo "=== service e2e (${svc_dir}) ==="
"${root}/build/tools/mergepurge_serve" --port=0 \
  --port-file="${svc_dir}/port.txt" \
  --metrics-out="${svc_dir}/serve_metrics.json" \
  --batch-delay-ms=1 --log-level=info 2>"${svc_dir}/serve.log" &
serve_pid=$!
trap 'kill "${serve_pid}" 2>/dev/null || true; rm -rf "${obs_dir}" "${svc_dir}"' EXIT
for _ in $(seq 1 50); do
  [ -s "${svc_dir}/port.txt" ] && break
  sleep 0.1
done
[ -s "${svc_dir}/port.txt" ] || {
  echo "ci: server did not write its port file" >&2
  cat "${svc_dir}/serve.log" >&2
  exit 1
}
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${svc_dir}/port.txt")" --records=10000 --threads=4 \
  --match-frac=0.4 --out="${svc_dir}/BENCH_service.json"
"${root}/build/tools/validate_report" \
  --file="${svc_dir}/BENCH_service.json" outcome \
  config/summary/requests_per_second \
  config/summary/latency_request/p50_us \
  config/summary/latency_request/p99_us \
  histograms/service.client.request_us \
  histograms/service.client.match_us histograms/service.client.upsert_us
kill -TERM "${serve_pid}"
serve_status=0
wait "${serve_pid}" || serve_status=$?
if [ "${serve_status}" -ne 0 ]; then
  echo "ci: mergepurge_serve did not drain cleanly (exit ${serve_status})" >&2
  cat "${svc_dir}/serve.log" >&2
  exit 1
fi
"${root}/build/tools/validate_report" \
  --file="${svc_dir}/serve_metrics.json" outcome \
  config/service/records config/service/entities config/service/batches \
  counters/service.requests counters/service.upsert_records \
  counters/service.batches histograms/service.request_us \
  histograms/service.match_us histograms/service.upsert_us \
  histograms/service.queue_wait_us histograms/service.batch_records
cp "${svc_dir}/BENCH_service.json" "${root}/BENCH_service.json"

echo "ci: plain and sanitized suites passed; obs + service e2e validated"
