#!/bin/sh
# Tier-1 CI: build and run the full test suite twice — once plain, once
# with AddressSanitizer + UndefinedBehaviorSanitizer — so data races on
# the retry/speculation paths and lifetime bugs in the checkpoint code
# surface before merge.
#
# Usage: tools/ci.sh [jobs]      (from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

run_suite() {
  build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${root}" "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_suite "${root}/build" -DMERGEPURGE_SANITIZE=""
run_suite "${root}/build-san" "-DMERGEPURGE_SANITIZE=address;undefined"

echo "ci: plain and sanitized suites passed"
