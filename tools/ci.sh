#!/bin/sh
# Tier-1 CI: build and run the full test suite three times — plain, with
# AddressSanitizer + UndefinedBehaviorSanitizer, and (concurrency tests
# only) with ThreadSanitizer — so data races on the retry/speculation
# paths and lifetime bugs in the checkpoint code surface before merge.
# Then: a clang -Wthread-safety build (when available), the lockcheck
# lock-discipline lint, the deadlockcheck whole-program lock-order
# verifier (clean repo + seeded-inversion rejection), clang-tidy over
# src/ (when available), the
# rulecheck theory lint gate, the observability + service end-to-end
# contracts, and the latency-regression bench gates.
#
# Usage: tools/ci.sh [jobs]      (from the repository root)
set -eu

jobs="${1:-$(nproc 2>/dev/null || echo 2)}"
root="$(cd "$(dirname "$0")/.." && pwd)"

# run_suite <build-dir> <ctest -R filter or ''> [cmake args...]
run_suite() {
  build_dir="$1"
  test_filter="$2"
  shift 2
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S "${root}" "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ${test_filter:+(-R ${test_filter})} ==="
  if [ -n "${test_filter}" ]; then
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}" \
      -R "${test_filter}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  fi
}

run_suite "${root}/build" "" -DMERGEPURGE_SANITIZE="" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
run_suite "${root}/build-san" "" "-DMERGEPURGE_SANITIZE=address;undefined"
# TSan is incompatible with ASan, so it gets its own tree; run the suites
# that exercise threads (parallel engine, resilient retry, incremental
# engine, the TCP service, fault-tolerance, the sync primitives) rather
# than all of ctest.
run_suite "${root}/build-tsan" \
  "parallel_test|incremental_test|incremental_property_test|service_test|shard_test|fault_tolerance_test|metrics_test|obs_window_test|sync_test|durability_test" \
  "-DMERGEPURGE_SANITIZE=thread"

# Compile-time lock discipline (clang only): build the whole tree with
# the thread-safety analysis promoted to errors. The configure step also
# runs the negative-compile fixture (tests/negative_compile/), so this
# proves both "our annotations are consistent" and "the analysis still
# rejects an unannotated guarded access". g++-only hosts skip, loudly —
# the lockcheck linter below still runs everywhere.
if command -v clang++ >/dev/null 2>&1; then
  run_suite "${root}/build-clang-tsa" "sync_test" \
    -DCMAKE_CXX_COMPILER=clang++ -DMERGEPURGE_THREAD_SAFETY=ON
else
  echo "=== clang++ not installed; skipping -Wthread-safety build ==="
fi

# Lock-discipline lint: no naked std::mutex / lock_guard / detached
# threads outside src/util/sync.h (docs/concurrency.md documents the
# allowlist syntax). Pure-python, so it runs even without clang.
if command -v python3 >/dev/null 2>&1; then
  echo "=== lockcheck ==="
  python3 "${root}/tools/lockcheck.py" --root="${root}"
else
  echo "=== python3 not installed; skipping lockcheck ==="
fi

# Whole-program lock-order verification (docs/concurrency.md): the
# repository must be clean under mergepurge_deadlockcheck (manifest,
# ranks header and docs table all in agreement, no undeclared nesting),
# and the tool must still REJECT a seeded inversion — the negative
# control proving the gate checks something. ctest runs the full
# seeded corpus (deadlockcheck_corpus_*); this is the smoke version.
echo "=== deadlockcheck ==="
"${root}/build/tools/mergepurge_deadlockcheck" --root="${root}" \
  --manifest="${root}/tools/lock_hierarchy.json"
inv_status=0
"${root}/build/tools/mergepurge_deadlockcheck" \
  --root="${root}/tests/deadlockcheck_corpus/rank_inversion" \
  --manifest="${root}/tests/deadlockcheck_corpus/rank_inversion/manifest.json" \
  --skip-ranks --skip-docs >/dev/null 2>&1 || inv_status=$?
if [ "${inv_status}" -ne 1 ]; then
  echo "ci: deadlockcheck accepted a seeded rank inversion (exit ${inv_status})" >&2
  exit 1
fi

# Static analysis over our sources (.clang-tidy pins the check set).
# clang-tidy is optional tooling — skip, loudly, when not installed.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== clang-tidy src/ ==="
  find "${root}/src" -name '*.cc' -print0 |
    xargs -0 -P "${jobs}" -n 8 clang-tidy -p "${root}/build" --quiet
else
  echo "=== clang-tidy not installed; skipping tidy step ==="
fi

# Rule-theory lint gate: the shipped employee theory must be clean at
# -Werror severity, its JSON report must validate, and a known-bad theory
# (blank-merge: fires on two all-empty records) must be rejected with the
# findings exit code (1), both by rulecheck and by the CLI preflight.
lint_dir="$(mktemp -d)"
trap 'rm -rf "${lint_dir}"' EXIT
echo "=== rulecheck e2e (${lint_dir}) ==="
"${root}/build/tools/mergepurge_rulecheck" --builtin-employee --werror
"${root}/build/tools/mergepurge_rulecheck" --builtin-employee \
  --format=json --out="${lint_dir}/lint.json"
"${root}/build/tools/validate_report" --file="${lint_dir}/lint.json" \
  tool source outcome/ok program/rules program/merge_directives \
  counts/error counts/warning counts/suppressed diagnostics
printf 'rule blank:\n  if similarity(r1.last_name, r2.last_name) >= 0.9\n  then match\n' \
  > "${lint_dir}/bad.rules"
bad_status=0
"${root}/build/tools/mergepurge_rulecheck" --rules="${lint_dir}/bad.rules" \
  >/dev/null 2>&1 || bad_status=$?
if [ "${bad_status}" -ne 1 ]; then
  echo "ci: rulecheck accepted a blank-merge theory (exit ${bad_status})" >&2
  exit 1
fi
preflight_status=0
"${root}/build/tools/mergepurge" --gen=10 --output="${lint_dir}/out.csv" \
  --rules="${lint_dir}/bad.rules" --rules-check >/dev/null 2>&1 ||
  preflight_status=$?
if [ "${preflight_status}" -ne 1 ]; then
  echo "ci: --rules-check let a blank-merge theory run (exit ${preflight_status})" >&2
  exit 1
fi

# End-to-end observability contract: a generated CLI run must produce a
# run report and a Chrome trace whose required keys all resolve
# (docs/observability.md documents both schemas).
obs_dir="$(mktemp -d)"
trap 'rm -rf "${lint_dir}" "${obs_dir}"' EXIT
echo "=== obs e2e (${obs_dir}) ==="
"${root}/build/tools/mergepurge" --gen=2000 --output="${obs_dir}/out.csv" \
  --rules-check \
  --metrics-out="${obs_dir}/metrics.json" \
  --trace-out="${obs_dir}/trace.json" --progress --log-level=info
"${root}/build/tools/validate_report" --file="${obs_dir}/metrics.json" \
  passes closure outcome \
  counters/snm.windows counters/snm.comparisons counters/snm.matches \
  counters/closure.unions counters/resilient.retries \
  counters/faults.tripped histograms/snm.scan_us histograms/closure.us
"${root}/build/tools/validate_report" --file="${obs_dir}/trace.json" \
  traceEvents displayTimeUnit

# Service e2e: serve on an ephemeral loopback port — WAL durability ON
# (--data-dir, --fsync=group) so the latency gate below prices the WAL
# into every upsert — drive a >=10k-record match+upsert mix with the
# loadgen, validate both run reports, then SIGTERM the server and
# require a clean (exit 0) graceful drain (docs/service.md,
# docs/durability.md).
svc_dir="$(mktemp -d)"
echo "=== service e2e (${svc_dir}) ==="
"${root}/build/tools/mergepurge_serve" --port=0 \
  --port-file="${svc_dir}/port.txt" \
  --data-dir="${svc_dir}/data" --fsync=group \
  --metrics-out="${svc_dir}/serve_metrics.json" \
  --rules-check \
  --batch-delay-ms=1 --log-level=info 2>"${svc_dir}/serve.log" &
serve_pid=$!
trap 'kill "${serve_pid}" 2>/dev/null || true; rm -rf "${lint_dir}" "${obs_dir}" "${svc_dir}"' EXIT
for _ in $(seq 1 50); do
  [ -s "${svc_dir}/port.txt" ] && break
  sleep 0.1
done
[ -s "${svc_dir}/port.txt" ] || {
  echo "ci: server did not write its port file" >&2
  cat "${svc_dir}/serve.log" >&2
  exit 1
}
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${svc_dir}/port.txt")" --records=10000 --threads=4 \
  --match-frac=0.4 --out="${svc_dir}/BENCH_service.json"
"${root}/build/tools/validate_report" \
  --file="${svc_dir}/BENCH_service.json" outcome \
  config/summary/requests_per_second \
  config/summary/latency_request/p50_us \
  config/summary/latency_request/p99_us \
  histograms/service.client.request_us \
  histograms/service.client.match_us histograms/service.client.upsert_us
# Live introspection e2e (docs/observability.md "Live introspection"):
# drive a second burst with the loadgen's windowed progress reporter on,
# poll {"op":"stats"} through mergepurge_top --json mid-burst, and
# schema-validate the round-tripped doc: lifecycle state, resident
# gauges, histogram summaries, the server-side rate window, and the six
# commit-pipeline stage histograms.
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${svc_dir}/port.txt")" --records=6000 --threads=4 \
  --match-frac=0.2 --progress-interval-ms=200 \
  --out="${svc_dir}/loadgen_live.json" 2>"${svc_dir}/loadgen_live.log" &
live_loadgen_pid=$!
sleep 0.7
"${root}/build/tools/mergepurge_top" --port="$(cat "${svc_dir}/port.txt")" \
  --json --count=2 --interval-ms=400 > "${svc_dir}/stats_live.jsonl"
live_status=0
wait "${live_loadgen_pid}" || live_status=$?
if [ "${live_status}" -ne 0 ]; then
  echo "ci: introspection-e2e loadgen failed (exit ${live_status})" >&2
  cat "${svc_dir}/loadgen_live.log" >&2
  exit 1
fi
grep -q 'req/s' "${svc_dir}/loadgen_live.log" || {
  echo "ci: loadgen --progress-interval-ms printed no progress lines" >&2
  cat "${svc_dir}/loadgen_live.log" >&2
  exit 1
}
tail -n 1 "${svc_dir}/stats_live.jsonl" > "${svc_dir}/stats_live.json"
"${root}/build/tools/validate_report" --file="${svc_dir}/stats_live.json" \
  ok:bool state:string uptime_seconds:number \
  records:number entities:number pairs:number durability/wal_seq:number \
  counters:object gauges:object histograms:object \
  window:object window/valid:bool \
  counters/service.requests:number counters/service.batches:number \
  gauges/service.records_resident:number \
  gauges/service.pairs_resident:number \
  gauges/service.components_resident:number \
  gauges/service.wal.open_segment_bytes:number \
  gauges/service.snapshot.age_ms:number \
  histograms/service.upsert_us:object \
  histograms/service.stage.queue_wait_us/p50:number \
  histograms/service.stage.wal_append_us/p50:number \
  histograms/service.stage.wal_fsync_us/p50:number \
  histograms/service.stage.apply_us/p50:number \
  histograms/service.stage.label_rebuild_us/p50:number \
  histograms/service.stage.ack_us/p50:number
# Once the burst has drained, the stage histograms must attribute the
# commit pipeline exactly: one sample per committed batch in every
# stage, and the per-stage p50s summing to the end-to-end upsert p50
# (within 15% — quantiles interpolate within log-spaced buckets).
"${root}/build/tools/mergepurge_top" --port="$(cat "${svc_dir}/port.txt")" \
  --json --count=1 > "${svc_dir}/stats_final.json"
python3 - "${svc_dir}/stats_live.json" "${svc_dir}/stats_final.json" <<'EOF'
import json, sys
live = json.load(open(sys.argv[1]))
final = json.load(open(sys.argv[2]))
window = live["window"]
assert window["valid"], "server-side window invalid after two polls"
assert window["requests_per_sec"] > 0, "window rated zero requests"
hist = final["histograms"]
batches = final["counters"]["service.batches"]
stages = ["service.stage.queue_wait_us", "service.stage.wal_append_us",
          "service.stage.wal_fsync_us", "service.stage.apply_us",
          "service.stage.label_rebuild_us", "service.stage.ack_us"]
for name in stages:
    count = hist[name]["count"]
    assert count == batches, (
        f"{name} count {count} != service.batches {batches}")
stage_sum = sum(hist[name]["p50"] for name in stages)
upsert_p50 = final["histograms"]["service.upsert_us"]["p50"]
assert abs(stage_sum - upsert_p50) <= 0.15 * upsert_p50, (
    f"stage p50 sum {stage_sum:.0f}us outside 15% of "
    f"upsert p50 {upsert_p50:.0f}us")
print(f"ci: stage attribution ok: {len(stages)} stages x {batches} "
      f"batches, sum(stage p50) {stage_sum:.0f}us vs upsert p50 "
      f"{upsert_p50:.0f}us")
EOF
kill -TERM "${serve_pid}"
serve_status=0
wait "${serve_pid}" || serve_status=$?
if [ "${serve_status}" -ne 0 ]; then
  echo "ci: mergepurge_serve did not drain cleanly (exit ${serve_status})" >&2
  cat "${svc_dir}/serve.log" >&2
  exit 1
fi
"${root}/build/tools/validate_report" \
  --file="${svc_dir}/serve_metrics.json" outcome \
  config/service/records config/service/entities config/service/batches \
  config/durability/data_dir config/durability/fsync \
  config/durability/applied_seq config/durability/snapshot_seq \
  config/durability/recovery/recovery_ms \
  counters/service.requests counters/service.upsert_records \
  counters/service.batches counters/service.wal.appends \
  counters/service.wal.fsyncs counters/service.wal.bytes \
  histograms/service.request_us \
  histograms/service.match_us histograms/service.upsert_us \
  histograms/service.queue_wait_us histograms/service.batch_records \
  histograms/service.wal.append_us \
  histograms/service.stage.queue_wait_us \
  histograms/service.stage.wal_fsync_us histograms/service.stage.apply_us \
  gauges/service.records_resident gauges/service.pairs_resident \
  gauges/service.components_resident
cp "${svc_dir}/BENCH_service.json" "${root}/BENCH_service.json"

# Crash-recovery e2e: kill -9 the server mid-stream, restart it on the
# SAME port over the same --data-dir, and require (a) the loadgen —
# whose retry loop papers over the outage — to finish with exit 0 and a
# nonzero retry count, (b) the recovered server to drain cleanly, and
# (c) mergepurge_walcheck to prove the recovered state byte-identical
# to a serial replay of the full WAL (docs/durability.md).
crash_dir="$(mktemp -d)"
echo "=== crash-recovery e2e (${crash_dir}) ==="
"${root}/build/tools/mergepurge_serve" --port=0 \
  --port-file="${crash_dir}/port.txt" \
  --data-dir="${crash_dir}/data" --fsync=group --keep-wal \
  --snapshot-batches=64 \
  --batch-delay-ms=1 --log-level=warn 2>"${crash_dir}/serve1.log" &
crash_pid=$!
trap 'kill "${serve_pid}" 2>/dev/null || true; kill -9 "${crash_pid}" 2>/dev/null || true; rm -rf "${lint_dir}" "${obs_dir}" "${svc_dir}" "${crash_dir}"' EXIT
for _ in $(seq 1 50); do
  [ -s "${crash_dir}/port.txt" ] && break
  sleep 0.1
done
[ -s "${crash_dir}/port.txt" ] || {
  echo "ci: crash-e2e server did not write its port file" >&2
  cat "${crash_dir}/serve1.log" >&2
  exit 1
}
crash_port="$(cat "${crash_dir}/port.txt")"
"${root}/build/tools/mergepurge_loadgen" \
  --port="${crash_port}" --records=8000 --threads=4 \
  --match-frac=0.2 --progress-interval-ms=200 \
  --out="${crash_dir}/loadgen.json" \
  2>"${crash_dir}/loadgen.log" &
loadgen_pid=$!
sleep 0.5
kill -9 "${crash_pid}" 2>/dev/null || true
wait "${crash_pid}" 2>/dev/null || true
"${root}/build/tools/mergepurge_serve" --port="${crash_port}" \
  --data-dir="${crash_dir}/data" --fsync=group --keep-wal \
  --snapshot-batches=64 \
  --metrics-out="${crash_dir}/serve2_metrics.json" \
  --batch-delay-ms=1 --log-level=warn 2>"${crash_dir}/serve2.log" &
crash_pid=$!
loadgen_status=0
wait "${loadgen_pid}" || loadgen_status=$?
if [ "${loadgen_status}" -ne 0 ]; then
  echo "ci: loadgen did not survive the server crash (exit ${loadgen_status})" >&2
  cat "${crash_dir}/loadgen.log" "${crash_dir}/serve2.log" >&2
  exit 1
fi
"${root}/build/tools/validate_report" \
  --file="${crash_dir}/loadgen.json" outcome \
  config/summary/retries counters/service.client.retries
retries="$(python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))["config"]["summary"]["retries"])' \
  "${crash_dir}/loadgen.json")"
if [ "${retries}" -eq 0 ]; then
  echo "ci: crash-e2e loadgen reported zero retries; the kill -9 missed" >&2
  exit 1
fi
kill -TERM "${crash_pid}"
crash_status=0
wait "${crash_pid}" || crash_status=$?
if [ "${crash_status}" -ne 0 ]; then
  echo "ci: recovered server did not drain cleanly (exit ${crash_status})" >&2
  cat "${crash_dir}/serve2.log" >&2
  exit 1
fi
"${root}/build/tools/validate_report" \
  --file="${crash_dir}/serve2_metrics.json" outcome \
  config/durability/applied_seq \
  config/durability/recovery/snapshot_loaded \
  config/durability/recovery/batches_replayed \
  config/durability/recovery/recovery_ms \
  counters/service.recovery.batches_replayed \
  histograms/service.recovery.us
"${root}/build/tools/mergepurge_walcheck" --data-dir="${crash_dir}/data"

# Sharded-coordinator e2e (docs/sharding.md): four shard engines behind
# mergepurge_coord. Phase 1 benches the sharded data path with the same
# loadgen mix as the service e2e — it must beat the single-engine
# records/s measured above (the whole point of sharding) — and
# validates the merged stats: global record/entity/pair figures at top
# level, one attributed section per shard, and the coord.* metric set.
# Phase 2, on a fresh topology, kills one shard with kill -9 mid-load,
# restarts it on the same port over the same WAL, and requires the
# loadgen to finish clean (exit 0) with the coordinator absorbing the
# outage (coord.shard_retries > 0). Afterwards the shard-count
# invariance must still hold against a single engine fed the same
# sequential stream: the sharded run may never END UP WITH MORE
# entities (a lost cross-boundary match would split an entity — the
# boundary band exists to make that impossible), and may merge at most
# a sliver more (conservative band replicas and at-least-once resends
# can only add genuine matches; tests/shard_test.cc pins exact label
# equality for the deterministic in-process case).
coord_dir="$(mktemp -d)"
trap 'kill "${serve_pid}" 2>/dev/null || true; kill -9 "${crash_pid}" 2>/dev/null || true; for f in "${coord_dir}"/pid_*; do kill -9 "$(cat "${f}")" 2>/dev/null || true; done; rm -rf "${lint_dir}" "${obs_dir}" "${svc_dir}" "${crash_dir}" "${coord_dir}"' EXIT
echo "=== coordinator e2e (${coord_dir}) ==="
# wait_port <port-file> <log-file>
wait_port() {
  for _ in $(seq 1 50); do
    [ -s "$1" ] && return 0
    sleep 0.1
  done
  echo "ci: server did not write its port file ($1)" >&2
  cat "$2" >&2
  exit 1
}
for i in 0 1 2 3; do
  "${root}/build/tools/mergepurge_serve" --port=0 \
    --port-file="${coord_dir}/b_port${i}.txt" --keys=last-name \
    --instance-label="shard-${i}" \
    --data-dir="${coord_dir}/b_data${i}" --fsync=group \
    --batch-delay-ms=1 --log-level=warn 2>"${coord_dir}/b_serve${i}.log" &
  echo $! > "${coord_dir}/pid_b${i}"
done
for i in 0 1 2 3; do
  wait_port "${coord_dir}/b_port${i}.txt" "${coord_dir}/b_serve${i}.log"
done
coord_shards="127.0.0.1:$(cat "${coord_dir}/b_port0.txt"),127.0.0.1:$(cat "${coord_dir}/b_port1.txt"),127.0.0.1:$(cat "${coord_dir}/b_port2.txt"),127.0.0.1:$(cat "${coord_dir}/b_port3.txt")"
"${root}/build/tools/mergepurge_coord" --shards="${coord_shards}" \
  --port=0 --port-file="${coord_dir}/b_coord_port.txt" --keys=last-name \
  --log-level=warn 2>"${coord_dir}/b_coord.log" &
echo $! > "${coord_dir}/pid_bc"
wait_port "${coord_dir}/b_coord_port.txt" "${coord_dir}/b_coord.log"
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${coord_dir}/b_coord_port.txt")" --records=10000 \
  --threads=4 --match-frac=0.4 --out="${coord_dir}/BENCH_coord.json"
"${root}/build/tools/validate_report" \
  --file="${coord_dir}/BENCH_coord.json" outcome \
  config/summary/requests_per_second config/summary/records_per_second \
  config/summary/latency_request/p50_us \
  config/summary/latency_request/p99_us \
  histograms/service.client.request_us
python3 - "${coord_dir}/BENCH_coord.json" "${svc_dir}/BENCH_service.json" <<'EOF'
import json, sys
coord = json.load(open(sys.argv[1]))["config"]["summary"]
single = json.load(open(sys.argv[2]))["config"]["summary"]
c, s = coord["records_per_second"], single["records_per_second"]
assert c > s, f"4-shard coordinator ({c:.0f} rec/s) did not beat the single engine ({s:.0f} rec/s)"
print(f"ci: coordinator throughput ok: {c:.0f} rec/s vs single-engine {s:.0f} rec/s")
EOF
"${root}/build/tools/mergepurge_top" \
  --port="$(cat "${coord_dir}/b_coord_port.txt")" --json --count=1 \
  > "${coord_dir}/b_stats.json"
"${root}/build/tools/validate_report" --file="${coord_dir}/b_stats.json" \
  ok:bool records:number entities:number pairs:number shards \
  counters/coord.route_records:number \
  counters/coord.replica_records:number
python3 - "${coord_dir}/b_stats.json" <<'EOF'
import json, sys
stats = json.load(open(sys.argv[1]))
assert stats["records"] == 10000, f"merged stats lost records: {stats['records']}"
shards = stats["shards"]
assert len(shards) == 4, f"expected 4 shard sections, got {len(shards)}"
labels = sorted(s.get("instance") for s in shards)
assert labels == [f"shard-{i}" for i in range(4)], f"instance labels wrong: {labels}"
resident = sum(s["records"] for s in shards)
assert resident >= 10000, f"shards hold {resident} < 10000 records"
print(f"ci: merged stats ok: 10000 global records, {resident} resident across 4 shards ({resident - 10000} boundary replicas)")
EOF
kill -TERM "$(cat "${coord_dir}/pid_bc")"
bench_coord_status=0
wait "$(cat "${coord_dir}/pid_bc")" || bench_coord_status=$?
if [ "${bench_coord_status}" -ne 0 ]; then
  echo "ci: mergepurge_coord did not drain cleanly (exit ${bench_coord_status})" >&2
  cat "${coord_dir}/b_coord.log" >&2
  exit 1
fi
for i in 0 1 2 3; do
  kill -TERM "$(cat "${coord_dir}/pid_b${i}")" 2>/dev/null || true
  wait "$(cat "${coord_dir}/pid_b${i}")" || {
    echo "ci: bench shard ${i} did not drain cleanly" >&2
    exit 1
  }
done
cp "${coord_dir}/BENCH_coord.json" "${root}/BENCH_coord.json"

# Phase 2: crash a shard under durable load, restart it, check the
# invariance. Sequential (--threads=1, fixed seed) so the reference
# single-engine stream is identical.
for i in 0 1 2 3; do
  "${root}/build/tools/mergepurge_serve" --port=0 \
    --port-file="${coord_dir}/c_port${i}.txt" --keys=last-name \
    --instance-label="shard-${i}" \
    --data-dir="${coord_dir}/c_data${i}" --fsync=group --keep-wal \
    --batch-delay-ms=1 --log-level=warn 2>"${coord_dir}/c_serve${i}.log" &
  echo $! > "${coord_dir}/pid_c${i}"
done
for i in 0 1 2 3; do
  wait_port "${coord_dir}/c_port${i}.txt" "${coord_dir}/c_serve${i}.log"
done
coord_shards="127.0.0.1:$(cat "${coord_dir}/c_port0.txt"),127.0.0.1:$(cat "${coord_dir}/c_port1.txt"),127.0.0.1:$(cat "${coord_dir}/c_port2.txt"),127.0.0.1:$(cat "${coord_dir}/c_port3.txt")"
"${root}/build/tools/mergepurge_coord" --shards="${coord_shards}" \
  --port=0 --port-file="${coord_dir}/c_coord_port.txt" --keys=last-name \
  --metrics-out="${coord_dir}/coord_metrics.json" \
  --log-level=warn 2>"${coord_dir}/c_coord.log" &
echo $! > "${coord_dir}/pid_cc"
wait_port "${coord_dir}/c_coord_port.txt" "${coord_dir}/c_coord.log"
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${coord_dir}/c_coord_port.txt")" --records=6000 \
  --threads=1 --match-frac=0 --seed=7 \
  --out="${coord_dir}/c_loadgen.json" 2>"${coord_dir}/c_loadgen.log" &
coord_loadgen_pid=$!
sleep 1.2
kill -9 "$(cat "${coord_dir}/pid_c1")" 2>/dev/null || true
wait "$(cat "${coord_dir}/pid_c1")" 2>/dev/null || true
sleep 0.3
"${root}/build/tools/mergepurge_serve" \
  --port="$(cat "${coord_dir}/c_port1.txt")" --keys=last-name \
  --instance-label=shard-1 \
  --data-dir="${coord_dir}/c_data1" --fsync=group --keep-wal \
  --batch-delay-ms=1 --log-level=warn 2>"${coord_dir}/c_serve1b.log" &
echo $! > "${coord_dir}/pid_c1"
coord_loadgen_status=0
wait "${coord_loadgen_pid}" || coord_loadgen_status=$?
if [ "${coord_loadgen_status}" -ne 0 ]; then
  echo "ci: loadgen did not survive the shard crash (exit ${coord_loadgen_status})" >&2
  cat "${coord_dir}/c_loadgen.log" "${coord_dir}/c_coord.log" >&2
  exit 1
fi
"${root}/build/tools/mergepurge_top" \
  --port="$(cat "${coord_dir}/c_coord_port.txt")" --json --count=1 \
  > "${coord_dir}/c_stats.json"
# Reference: the identical sequential stream through one engine.
"${root}/build/tools/mergepurge_serve" --port=0 \
  --port-file="${coord_dir}/ref_port.txt" --keys=last-name \
  --batch-delay-ms=1 --log-level=warn 2>"${coord_dir}/ref_serve.log" &
echo $! > "${coord_dir}/pid_ref"
wait_port "${coord_dir}/ref_port.txt" "${coord_dir}/ref_serve.log"
"${root}/build/tools/mergepurge_loadgen" \
  --port="$(cat "${coord_dir}/ref_port.txt")" --records=6000 \
  --threads=1 --match-frac=0 --seed=7 --out="${coord_dir}/ref_loadgen.json"
"${root}/build/tools/mergepurge_top" \
  --port="$(cat "${coord_dir}/ref_port.txt")" --json --count=1 \
  > "${coord_dir}/ref_stats.json"
python3 - "${coord_dir}/c_stats.json" "${coord_dir}/ref_stats.json" <<'EOF'
import json, sys
coord = json.load(open(sys.argv[1]))
ref = json.load(open(sys.argv[2]))
retries = coord["counters"]["coord.shard_retries"]
assert retries > 0, "shard kill -9 caused zero coordinator retries; the kill missed the load"
unreachable = [s["shard"] for s in coord["shards"] if "error" in s]
assert not unreachable, f"shards unreachable after restart: {unreachable}"
assert coord["records"] == 6000, f"global closure lost records: {coord['records']}"
ce, se = coord["entities"], ref["entities"]
assert ce <= se, (
    f"sharded run SPLIT entities ({ce} > single-engine {se}): a cross-boundary match was lost")
assert se - ce <= max(5, se // 500), (
    f"sharded run over-merged ({ce} vs single-engine {se})")
print(f"ci: crash invariance ok: {retries} shard retries, {ce} global entities vs {se} single-engine")
EOF
kill -TERM "$(cat "${coord_dir}/pid_cc")"
coord_status=0
wait "$(cat "${coord_dir}/pid_cc")" || coord_status=$?
if [ "${coord_status}" -ne 0 ]; then
  echo "ci: crash-phase coordinator did not drain cleanly (exit ${coord_status})" >&2
  cat "${coord_dir}/c_coord.log" >&2
  exit 1
fi
"${root}/build/tools/validate_report" \
  --file="${coord_dir}/coord_metrics.json" outcome \
  config/shards config/service/records config/service/entities \
  counters/coord.route_records counters/coord.replica_records \
  counters/coord.shard_retries \
  histograms/coord.fanout_us histograms/coord.closure_merge_us \
  gauges/coord.global_records gauges/coord.global_entities
for i in 0 1 2 3; do
  kill -TERM "$(cat "${coord_dir}/pid_c${i}")" 2>/dev/null || true
  wait "$(cat "${coord_dir}/pid_c${i}")" || {
    echo "ci: crash-phase shard ${i} did not drain cleanly" >&2
    exit 1
  }
done
kill -TERM "$(cat "${coord_dir}/pid_ref")" 2>/dev/null || true
wait "$(cat "${coord_dir}/pid_ref")" || true

# Latency-regression gates: compare the fresh service bench (from the
# e2e above) and a fresh sorted-neighborhood bench against the committed
# baselines in bench/baselines/, failing on a >25% p50 / best-seconds
# regression. An improvement beyond the margin prints a re-baseline
# reminder (see tools/bench_compare.cc).
echo "=== bench gates ==="
"${root}/build/bench/bench_snm" --records=20000 --window=10 --repeat=3 \
  --seed=42 --out="${root}/BENCH_snm.json"
"${root}/build/tools/bench_compare" \
  --baseline="${root}/bench/baselines/BENCH_service.json" \
  --fresh="${root}/BENCH_service.json" \
  --metric=config/summary/latency_request/p50_us --max-regress-pct=25
"${root}/build/tools/bench_compare" \
  --baseline="${root}/bench/baselines/BENCH_snm.json" \
  --fresh="${root}/BENCH_snm.json" \
  --metric=config/best_seconds --max-regress-pct=25

echo "ci: plain, asan/ubsan, tsan and lock-discipline gates passed; tidy + rulecheck + obs + service e2e + crash-recovery e2e + coordinator e2e + bench gates validated"
