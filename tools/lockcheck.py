#!/usr/bin/env python3
"""lockcheck: the lock-discipline linter (docs/concurrency.md).

src/util/sync.h is the only place raw synchronization primitives may
appear; everything else must use the capability-annotated wrappers so the
clang -Wthread-safety build can prove the lock invariants. This linter
keeps that closed-world property from regressing on compilers (gcc) that
cannot check the annotations themselves.

Forbidden outside src/util/sync.h:
  naked-mutex       std::mutex / std::shared_mutex / std::recursive_mutex /
                    std::timed_mutex / std::shared_timed_mutex
  naked-lock        std::lock_guard / std::unique_lock / std::shared_lock /
                    std::scoped_lock
  naked-condvar     std::condition_variable[_any]
  raw-lock-call     bare .lock() / .unlock() / .try_lock() /
                    .lock_shared() / .unlock_shared() calls
  detached-thread   std::thread(...).detach()
  sync-include      #include <mutex> / <shared_mutex> / <condition_variable>

Required in the durability sources (src/service/wal.*, snapshot.*):
  missing-sync-include  the file must include "util/sync.h" — directly,
                        or (for a .cc) via its paired same-directory
                        header. These files own mutexes in the service
                        hot path; losing the annotated primitives there
                        silently drops them out of the -Wthread-safety
                        proof.

Suppression mirrors rulecheck's `# rulecheck: allow(id)`: put
  // lockcheck: allow(<id>)
on the offending line (or the line directly above it), ideally with a
comment explaining why the raw primitive is unavoidable.

Usage: tools/lockcheck.py [--root=DIR]
Exit codes: 0 clean, 1 findings, 2 usage/setup error.
"""

import os
import re
import sys

SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")
EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
EXEMPT = {os.path.join("src", "util", "sync.h")}
# Deliberate-violation fixtures for this linter's own golden tests
# (run with --root pointed at each fixture) — skipped when scanning a
# real source tree so the seeded findings don't fail lockcheck_clean.
EXEMPT_SUBTREES = (os.path.join("tests", "lockcheck_fixtures"),)

CHECKS = [
    (
        "naked-mutex",
        re.compile(
            r"\bstd::(recursive_|timed_|shared_|shared_timed_)?mutex\b"
        ),
        "raw std::mutex family; use mergepurge::Mutex/SharedMutex "
        "(util/sync.h)",
    ),
    (
        "naked-lock",
        re.compile(r"\bstd::(lock_guard|unique_lock|shared_lock|scoped_lock)\b"),
        "raw std lock scope; use MutexLock/ReaderLock/WriterLock "
        "(util/sync.h)",
    ),
    (
        "naked-condvar",
        re.compile(r"\bstd::condition_variable(_any)?\b"),
        "raw std::condition_variable; use mergepurge::CondVar (util/sync.h)",
    ),
    (
        "raw-lock-call",
        re.compile(
            r"\.\s*(lock|unlock|try_lock|lock_shared|unlock_shared)\s*\(\s*\)"
        ),
        "bare .lock()/.unlock() call; use the scoped types or the "
        "annotated Lock()/Unlock() members",
    ),
    (
        "detached-thread",
        re.compile(r"\.\s*detach\s*\(\s*\)"),
        "detached thread; join it, or allowlist with a comment saying why "
        "it must outlive its owner",
    ),
    (
        "sync-include",
        re.compile(r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>'),
        "raw sync header; include \"util/sync.h\" instead",
    ),
]

# The lookbehind keeps this from matching inside a sibling linter's
# marker ("deadlockcheck: allow(...)" ends in the same substring).
ALLOW_RE = re.compile(
    r"(?<![\w-])lockcheck:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
KNOWN_IDS = {check_id for check_id, _, _ in CHECKS} | {"missing-sync-include"}

# Lock-owning service and introspection sources that must stay inside
# the annotated sync vocabulary: each must include util/sync.h, either
# directly or (a .cc) through its paired same-directory header.
MUST_INCLUDE_SYNC = (
    os.path.join("src", "service", "wal.h"),
    os.path.join("src", "service", "wal.cc"),
    os.path.join("src", "service", "snapshot.h"),
    os.path.join("src", "service", "snapshot.cc"),
    os.path.join("src", "service", "match_service.h"),
    os.path.join("src", "service", "match_service.cc"),
    os.path.join("src", "service", "server.h"),
    os.path.join("src", "service", "server.cc"),
    os.path.join("src", "obs", "window.h"),
    os.path.join("src", "obs", "window.cc"),
    os.path.join("src", "shard", "coordinator.h"),
    os.path.join("src", "shard", "coordinator.cc"),
)
SYNC_INCLUDE_RE = re.compile(r'#\s*include\s*"util/sync\.h"')


def includes_sync(root, rel_path, seen=None):
    """True if rel_path includes util/sync.h directly, or (one hop) via a
    paired header in the same directory."""
    if seen is None:
        seen = set()
    if rel_path in seen:
        return False
    seen.add(rel_path)
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            text = handle.read()
    except OSError:
        return False
    if SYNC_INCLUDE_RE.search(text):
        return True
    # Follow project-local includes that resolve into the same directory
    # (the paired wal.cc -> service/wal.h case).
    directory = os.path.dirname(rel_path)
    for included in re.findall(r'#\s*include\s*"([^"]+)"', text):
        candidate = os.path.join("src", included)
        if os.path.dirname(candidate) != directory:
            continue
        if includes_sync(root, candidate, seen):
            return True
    return False


def check_sync_includes(root):
    findings = []
    for rel_path in MUST_INCLUDE_SYNC:
        if not os.path.isfile(os.path.join(root, rel_path)):
            continue
        if not includes_sync(root, rel_path):
            findings.append(
                (rel_path, 1, "missing-sync-include",
                 'durability source must include "util/sync.h" (directly '
                 "or via its paired header)")
            )
    return findings


def allowed_ids(line):
    match = ALLOW_RE.search(line)
    if not match:
        return set()
    return {token.strip() for token in match.group(1).split(",")}


def strip_noncode(line):
    """Drop string/char literals and // comments so tokens inside them
    (e.g. this linter's own messages) don't trip the patterns. Heuristic,
    not a lexer — good enough for this codebase's style."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            i += 1
            out.append(quote + quote)
            continue
        out.append(c)
        i += 1
    return "".join(out)


def scan_file(root, rel_path):
    findings = []
    path = os.path.join(root, rel_path)
    try:
        with open(path, encoding="utf-8", errors="replace") as handle:
            lines = handle.readlines()
    except OSError as err:
        print(f"lockcheck: cannot read {rel_path}: {err}", file=sys.stderr)
        sys.exit(2)

    in_block_comment = False
    for lineno, line in enumerate(lines, start=1):
        allows = allowed_ids(line)
        if lineno > 1:
            allows |= allowed_ids(lines[lineno - 2])
        unknown = allows - KNOWN_IDS
        if unknown and ALLOW_RE.search(line):
            findings.append(
                (rel_path, lineno, "bad-allow",
                 f"unknown lockcheck id(s): {', '.join(sorted(unknown))}")
            )

        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        # Remove block comments opened (and possibly closed) on this line.
        while True:
            start = code.find("/*")
            if start < 0:
                break
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
        code = strip_noncode(code)

        for check_id, pattern, message in CHECKS:
            if not pattern.search(code):
                continue
            if check_id in allows:
                continue
            findings.append((rel_path, lineno, check_id, message))
    return findings


def main(argv):
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for arg in argv[1:]:
        if arg.startswith("--root="):
            root = arg[len("--root="):]
        else:
            print(__doc__, file=sys.stderr)
            return 2

    self_rel = os.path.relpath(os.path.abspath(__file__), root)
    findings = []
    scanned = 0
    for scan_dir in SCAN_DIRS:
        top = os.path.join(root, scan_dir)
        if not os.path.isdir(top):
            continue
        for dirpath, _, filenames in os.walk(top):
            for filename in sorted(filenames):
                if not filename.endswith(EXTENSIONS):
                    continue
                rel_path = os.path.relpath(
                    os.path.join(dirpath, filename), root
                )
                if rel_path in EXEMPT or rel_path == self_rel:
                    continue
                if any(rel_path.startswith(subtree + os.sep)
                       for subtree in EXEMPT_SUBTREES):
                    continue
                scanned += 1
                findings.extend(scan_file(root, rel_path))

    if scanned == 0:
        print("lockcheck: no sources found (bad --root?)", file=sys.stderr)
        return 2
    findings.extend(check_sync_includes(root))

    for rel_path, lineno, check_id, message in findings:
        print(f"{rel_path}:{lineno}: lockcheck({check_id}): {message}")
    if findings:
        print(f"lockcheck: {len(findings)} finding(s) in {scanned} files")
        return 1
    print(f"lockcheck: clean ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
