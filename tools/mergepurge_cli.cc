// mergepurge — command-line merge/purge over CSV record sources.
//
//   mergepurge --input=a.csv,b.csv --output=deduped.csv
//              [--method=snm|cluster]      (default snm)
//              [--window=10]
//              [--keys=last-name,first-name,address]   (default all three)
//              [--rules=theory.rules]      (rule-language file; default:
//                                           built-in 26-rule employee theory)
//              [--clusters=32]             (clustering method only)
//              [--spell-city]              (corpus spell-correct the city)
//              [--entities=entities.csv]   (tuple -> entity id mapping)
//              [--report]                  (per-pass statistics)
//              [--pairs-out=PREFIX]        (store each pass's pairs in
//                                           PREFIX.<key>.mpp for pipelined
//                                           closure across invocations)
//              [--pairs-in=a.mpp,b.mpp]    (ALSO union previously stored
//                                           pair files into the closure —
//                                           the paper's §4.1 operation)
//              [--resume=DIR]              (checkpoint each pass under DIR
//                                           and skip passes already
//                                           completed there; an
//                                           interrupted run restarted with
//                                           the same flags resumes instead
//                                           of starting over)
//              [--faults=SPEC]             (arm fault-injection points,
//                                           e.g. "io.pairs_write=fail:1";
//                                           see util/fault_injector.h)
//              [--gen=N]                   (instead of --input: synthesize
//                                           N original records plus
//                                           duplicates with the paper's
//                                           generator)
//              [--gen-seed=S]              (generator seed; default 42)
//              [--metrics-out=FILE.json]   (machine-readable run report:
//                                           config, per-pass stats, full
//                                           metrics snapshot)
//              [--trace-out=FILE.json]     (phase spans in Chrome
//                                           trace-event format; load in
//                                           chrome://tracing or Perfetto)
//              [--progress]                (live phase progress on stderr)
//              [--log-level=LEVEL]         (debug|info|warning|error)
//              [--rules-check]             (preflight the theory through
//                                           the static analyzer; lint
//                                           errors abort the run before
//                                           any data is read — see
//                                           docs/rule_lints.md)
//
// Exit codes: 0 success, 1 runtime failure (I/O, parse, engine), 2 usage
// error (unknown flag, bad flag value, missing required flag).
//
// Inputs must share the employee schema header:
//   ssn,first_name,initial,last_name,address,apartment,city,state,zip

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/merge_purge.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "core/multipass.h"
#include "gen/generator.h"
#include "io/csv.h"
#include "io/pairs_io.h"
#include "keys/standard_keys.h"
#include "obs/drain.h"
#include "obs/progress.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rules/analysis/analyzer.h"
#include "rules/employee_rules_text.h"
#include "rules/employee_theory.h"
#include "rules/rule_program.h"
#include "util/fault_injector.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge --input=a.csv[,b.csv...] --output=deduped.csv "
    "[--method=snm|cluster] [--window=N] [--keys=...] [--rules=FILE] "
    "[--clusters=N] [--spell-city] [--entities=FILE] [--report] "
    "[--pairs-out=PREFIX] [--pairs-in=a.mpp,...] [--resume=DIR] "
    "[--faults=SPEC] [--gen=N] [--gen-seed=S] [--metrics-out=FILE.json] "
    "[--trace-out=FILE.json] [--progress] [--log-level=LEVEL] "
    "[--rules-check]";

// Every flag the tool understands; anything else is a usage error.
constexpr const char* kKnownFlags[] = {
    "input",    "output",   "method",   "window",   "keys",
    "rules",    "clusters", "spell-city", "entities", "report",
    "pairs-out", "pairs-in", "resume",  "faults",   "gen",
    "gen-seed", "metrics-out", "trace-out", "progress", "log-level",
    "rules-check",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "mergepurge: %s\n", message.c_str());
  return kExitRuntime;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge: %s\n%s\n", message.c_str(), kUsage);
  return kExitUsage;
}

Result<std::vector<KeySpec>> ResolveKeys(const std::string& names) {
  std::vector<KeySpec> keys;
  for (std::string_view name : SplitView(names, ',')) {
    if (name == "last-name") {
      keys.push_back(LastNameKey());
    } else if (name == "first-name") {
      keys.push_back(FirstNameKey());
    } else if (name == "address") {
      keys.push_back(AddressKey());
    } else if (name == "soundex-last-name") {
      keys.push_back(PhoneticLastNameKey());
    } else {
      return Status::InvalidArgument(
          "unknown key '" + std::string(name) +
          "' (expected last-name, first-name, address, soundex-last-name)");
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument("no keys given");
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  // Before any thread exists, so every thread inherits the blocked mask.
  SignalDrain::Global().Install();

  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    return UsageError(args.status().message());
  }
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }
  if (args.Has("input") == args.Has("gen")) {
    return UsageError("exactly one of --input and --gen is required");
  }
  if (!args.Has("output")) {
    return UsageError("--output is required");
  }

  if (args.Has("log-level")) {
    std::string level_name = args.GetString("log-level", "");
    std::optional<LogLevel> level = ParseLogLevel(level_name);
    if (!level) {
      return UsageError("bad --log-level '" + level_name +
                        "' (expected debug, info, warning, or error)");
    }
    SetLogLevel(*level);
  }
  int64_t gen_records = args.GetInt("gen", 0);
  if (args.Has("gen") && gen_records < 1) {
    return UsageError("--gen must be >= 1 (got " +
                      args.GetString("gen", "") + ")");
  }
  if (args.GetBool("progress", false)) {
    ProgressReporter::Global().Enable();
  }
  if (args.Has("trace-out")) {
    TraceRecorder::Global().Enable();
  }

  // SIGINT/SIGTERM mid-run still flush the observability outputs (the
  // same drain helper the service uses, obs/drain.h): the report is
  // marked interrupted so downstream tooling can tell a partial run from
  // a complete one. SignalDrain then exits with the conventional 128+sig.
  if (args.Has("metrics-out") || args.Has("trace-out")) {
    const std::string metrics_path = args.GetString("metrics-out", "");
    const std::string trace_path = args.GetString("trace-out", "");
    SignalDrain::Global().OnSignal([metrics_path, trace_path](int signo) {
      if (!metrics_path.empty()) {
        RunReport run_report("mergepurge");
        run_report.SetOutcome(
            false, StringPrintf("interrupted by signal %d", signo));
        run_report.CaptureMetrics();
        Status report_write = run_report.WriteToFile(metrics_path);
        if (report_write.ok()) {
          std::fprintf(stderr, "wrote interrupted run report to %s\n",
                       metrics_path.c_str());
        }
      }
      if (!trace_path.empty()) {
        Status trace_write =
            TraceRecorder::Global().ExportChromeJson(trace_path);
        if (trace_write.ok()) {
          std::fprintf(stderr, "wrote interrupted trace to %s\n",
                       trace_path.c_str());
        }
      }
    });
  }

  if (args.Has("faults")) {
    Status armed =
        FaultInjector::Global().ArmFromSpec(args.GetString("faults", ""));
    if (!armed.ok()) return UsageError(armed.message());
  }

  // --- Optional theory preflight: lint before any data is read. Without
  // --rules this vets the built-in theory's rule-language mirror. ---
  if (args.GetBool("rules-check", false)) {
    std::string rules_name = "<builtin-employee>";
    std::string rules_source(EmployeeRulesText());
    if (args.Has("rules")) {
      rules_name = args.GetString("rules", "");
      std::ifstream rules_in(rules_name, std::ios::binary);
      if (!rules_in) return Fail("cannot open rules file: " + rules_name);
      std::ostringstream rules_text;
      rules_text << rules_in.rdbuf();
      rules_source = rules_text.str();
    }
    AnalysisReport analysis = AnalyzeRuleSource(rules_source);
    std::fputs(analysis.ToText(rules_name).c_str(), stderr);
    if (analysis.HasErrors()) {
      return Fail("--rules-check: theory has lint errors (see above)");
    }
  }

  // --- Configure the engine (all usage validation happens before any
  // input is read, so bad flags exit 2 even when inputs are bad too). ---
  MergePurgeOptions options;
  Result<std::vector<KeySpec>> keys = ResolveKeys(
      args.GetString("keys", "last-name,first-name,address"));
  if (!keys.ok()) return UsageError(keys.status().message());
  options.keys = std::move(*keys);
  int64_t window = args.GetInt("window", 10);
  if (window < 2) {
    return UsageError("--window must be >= 2 (got " +
                      args.GetString("window", "") + ")");
  }
  options.window = static_cast<size_t>(window);
  options.spell_correct_city = args.GetBool("spell-city", false);
  options.checkpoint_dir = args.GetString("resume", "");
  std::string method = args.GetString("method", "snm");
  if (method == "cluster") {
    options.method = MergePurgeOptions::Method::kClustering;
    int64_t clusters = args.GetInt("clusters", 32);
    if (clusters < 1) {
      return UsageError("--clusters must be >= 1 (got " +
                        args.GetString("clusters", "") + ")");
    }
    options.clustering.num_clusters = static_cast<size_t>(clusters);
  } else if (method != "snm") {
    return UsageError("unknown --method '" + method +
                      "' (expected snm or cluster)");
  }

  // --- Load and concatenate the sources (or synthesize them). ---
  Schema schema = employee::MakeSchema();
  Dataset combined(schema);
  if (args.Has("gen")) {
    GeneratorConfig gen_config;
    gen_config.num_records = static_cast<size_t>(gen_records);
    gen_config.seed = static_cast<uint64_t>(args.GetInt("gen-seed", 42));
    Result<GeneratedDatabase> generated =
        DatabaseGenerator(gen_config).Generate();
    if (!generated.ok()) return Fail(generated.status().ToString());
    combined = std::move(generated->dataset);
    std::fprintf(stderr, "generated %zu records (%lld originals)\n",
                 combined.size(), static_cast<long long>(gen_records));
  }
  const std::string input_list =
      args.Has("input") ? args.GetString("input", "") : std::string();
  for (std::string_view path_view :
       input_list.empty() ? std::vector<std::string_view>{}
                          : SplitView(input_list, ',')) {
    std::string path(path_view);
    Result<Dataset> source = ReadCsvFile(schema, path);
    if (!source.ok()) {
      return Fail(path + ": " + source.status().ToString());
    }
    Status concat = combined.Concatenate(*source);
    if (!concat.ok()) return Fail(concat.ToString());
    std::fprintf(stderr, "loaded %s (%zu records)\n", path.c_str(),
                 source->size());
  }
  if (combined.empty()) return Fail("no input records");

  // --- Theory: built-in or a rule-language file. ---
  std::unique_ptr<EquationalTheory> theory;
  if (args.Has("rules")) {
    std::string path = args.GetString("rules", "");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Fail("cannot open rules file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    Result<RuleProgram> program = RuleProgram::Compile(text.str(), schema);
    if (!program.ok()) {
      return Fail(path + ": " + program.status().ToString());
    }
    std::fprintf(stderr, "compiled %zu rules from %s\n",
                 program->num_rules(), path.c_str());
    theory = std::make_unique<RuleProgram>(std::move(*program));
  } else {
    theory = std::make_unique<EmployeeTheory>();
  }

  // --- Run. ---
  MergePurgeEngine engine(options);
  Result<MergePurgeResult> result = engine.Run(combined, *theory);
  if (!result.ok()) return Fail(result.status().ToString());
  if (!options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "resumed %zu of %zu passes from %s\n",
                 result->detail.passes_resumed,
                 result->detail.passes.size(),
                 options.checkpoint_dir.c_str());
  }

  if (args.GetBool("report", false)) {
    TablePrinter table({"pass", "pairs", "comparisons", "time(s)"});
    for (const PassResult& pass : result->detail.passes) {
      table.AddRow({pass.key_name, FormatCount(pass.pairs.size()),
                    FormatCount(pass.comparisons),
                    FormatDouble(pass.total_seconds)});
    }
    table.Print();
    std::printf("closure: %.3fs over %llu distinct pairs\n",
                result->detail.closure_seconds,
                static_cast<unsigned long long>(
                    result->detail.union_pair_count));
  }

  // --- Pipelined pair storage / reuse (paper §4.1). ---
  if (args.Has("pairs-out")) {
    std::string prefix = args.GetString("pairs-out", "pairs");
    for (const PassResult& pass : result->detail.passes) {
      std::string path = prefix + "." + pass.key_name + ".mpp";
      Status write_pairs = WritePairSetFile(pass.pairs, path);
      if (!write_pairs.ok()) return Fail(write_pairs.ToString());
      std::fprintf(stderr, "stored %zu pairs in %s\n", pass.pairs.size(),
                   path.c_str());
    }
  }
  if (args.Has("pairs-in")) {
    const std::string pair_list = args.GetString("pairs-in", "");
    PairSet combined_pairs;
    for (const PassResult& pass : result->detail.passes) {
      combined_pairs.Merge(pass.pairs);
    }
    for (std::string_view path_view : SplitView(pair_list, ',')) {
      Result<PairSet> stored = ReadPairSetFile(std::string(path_view));
      if (!stored.ok()) return Fail(stored.status().ToString());
      std::fprintf(stderr, "unioned %zu pairs from %.*s\n", stored->size(),
                   static_cast<int>(path_view.size()), path_view.data());
      combined_pairs.Merge(*stored);
    }
    result->component_of =
        TransitiveClosure(combined_pairs, combined.size());
  }

  // --- Purge and write. ---
  Dataset purged = result->Purge(combined);
  std::string out_path = args.GetString("output", "");
  Status write = WriteCsvFile(purged, out_path);
  if (!write.ok()) return Fail(write.ToString());
  std::fprintf(stderr, "%zu records -> %zu entities -> %s\n",
               combined.size(), purged.size(), out_path.c_str());

  // Optional tuple -> entity mapping.
  if (args.Has("entities")) {
    Dataset mapping(Schema({"tuple_id", "entity_id"}));
    for (size_t t = 0; t < result->component_of.size(); ++t) {
      mapping.Append(Record({std::to_string(t),
                             std::to_string(result->component_of[t])}));
    }
    std::string entities_path = args.GetString("entities", "");
    Status entities_write = WriteCsvFile(mapping, entities_path);
    if (!entities_write.ok()) return Fail(entities_write.ToString());
    std::fprintf(stderr, "wrote entity mapping to %s\n",
                 entities_path.c_str());
  }

  // --- Observability outputs (after all pipeline work). ---
  if (args.Has("metrics-out")) {
    RunReport run_report("mergepurge");
    run_report.SetConfig("method", JsonValue(method));
    run_report.SetConfig("window",
                         JsonValue(static_cast<uint64_t>(options.window)));
    run_report.SetConfig(
        "keys", JsonValue(args.GetString("keys",
                                         "last-name,first-name,address")));
    if (args.Has("gen")) {
      run_report.SetConfig("gen",
                           JsonValue(static_cast<uint64_t>(gen_records)));
      run_report.SetConfig(
          "gen_seed",
          JsonValue(static_cast<uint64_t>(args.GetInt("gen-seed", 42))));
    } else {
      run_report.SetConfig("input", JsonValue(input_list));
    }
    run_report.SetDataset(combined.size(), schema.num_fields());
    run_report.SetMultiPass(result->detail);
    run_report.SetOutcome(true);
    run_report.CaptureMetrics();
    std::string metrics_path = args.GetString("metrics-out", "");
    Status report_write = run_report.WriteToFile(metrics_path);
    if (!report_write.ok()) return Fail(report_write.ToString());
    std::fprintf(stderr, "wrote run report to %s\n", metrics_path.c_str());
  }
  if (args.Has("trace-out")) {
    std::string trace_path = args.GetString("trace-out", "");
    Status trace_write =
        TraceRecorder::Global().ExportChromeJson(trace_path);
    if (!trace_write.ok()) return Fail(trace_write.ToString());
    std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                 TraceRecorder::Global().span_count(), trace_path.c_str());
  }
  return 0;
}
