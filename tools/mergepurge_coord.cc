// mergepurge_coord — shard coordinator for the online merge/purge
// service (docs/sharding.md).
//
// Fronts N mergepurge_serve shard engines: routes upserts/matches by
// key range (equi-depth partition fit on a sample), replicates the w-1
// boundary band to neighbor shards so window scans never miss
// cross-boundary pairs, and maintains a global transitive closure over
// coordinator-assigned entity ids. Speaks the identical NDJSON protocol
// upward, so loadgen / mergepurge_top / validate_report work unchanged.
//
//   mergepurge_coord --shards=HOST:PORT,HOST:PORT,...
//                    [--port=7734]            (0 = ephemeral port)
//                    [--port-file=PATH]
//                    [--keys=last-name,first-name,address]
//                    [--window=10]            (must match the shards')
//                    [--histogram-depth=3]    (routing key prefix chars)
//                    [--router-sample=FILE.csv]  (fit the router here;
//                                              default: first upsert)
//                    [--retry-attempts=12]    (per-shard-call retries)
//                    [--workers=8] [--max-conn=64]
//                    [--max-line-bytes=1048576] [--idle-timeout-ms=30000]
//                    [--slow-request-us=0]
//                    [--instance-label=NAME]  (stamped into health/stats)
//                    [--metrics-out=FILE.json] [--trace-out=FILE.json]
//                    [--log-level=LEVEL]
//
// SIGINT/SIGTERM drain gracefully and write the run report.
// Exit codes: 0 clean drain, 1 runtime failure, 2 usage error.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "io/csv.h"
#include "keys/standard_keys.h"
#include "obs/drain.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rules/employee_theory.h"
#include "service/server.h"
#include "shard/coordinator.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_coord --shards=HOST:PORT,... [--port=N] "
    "[--port-file=PATH] [--keys=...] [--window=N] [--histogram-depth=N] "
    "[--router-sample=FILE.csv] [--retry-attempts=N] [--workers=N] "
    "[--max-conn=N] [--max-line-bytes=N] [--idle-timeout-ms=N] "
    "[--slow-request-us=N] [--instance-label=NAME] "
    "[--metrics-out=FILE.json] [--trace-out=FILE.json] "
    "[--log-level=LEVEL]";

constexpr const char* kKnownFlags[] = {
    "shards",         "port",            "port-file",
    "keys",           "window",          "histogram-depth",
    "router-sample",  "retry-attempts",  "workers",
    "max-conn",       "max-line-bytes",  "idle-timeout-ms",
    "slow-request-us", "instance-label", "metrics-out",
    "trace-out",      "log-level",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "mergepurge_coord: %s\n", message.c_str());
  return kExitRuntime;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_coord: %s\n%s\n", message.c_str(),
               kUsage);
  return kExitUsage;
}

Result<std::vector<KeySpec>> ResolveKeys(const std::string& names) {
  std::vector<KeySpec> keys;
  for (std::string_view name : SplitView(names, ',')) {
    if (name == "last-name") {
      keys.push_back(LastNameKey());
    } else if (name == "first-name") {
      keys.push_back(FirstNameKey());
    } else if (name == "address") {
      keys.push_back(AddressKey());
    } else if (name == "soundex-last-name") {
      keys.push_back(PhoneticLastNameKey());
    } else {
      return Status::InvalidArgument(
          "unknown key '" + std::string(name) +
          "' (expected last-name, first-name, address, soundex-last-name)");
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument("no keys given");
  }
  return keys;
}

// "host:port" or bare "port" (host defaults to loopback).
Result<std::vector<ShardAddress>> ResolveShards(const std::string& spec) {
  std::vector<ShardAddress> shards;
  for (std::string_view entry : SplitView(spec, ',')) {
    ShardAddress address;
    std::string_view port_text = entry;
    const size_t colon = entry.rfind(':');
    if (colon != std::string_view::npos) {
      if (colon == 0) {
        return Status::InvalidArgument("empty host in shard '" +
                                       std::string(entry) + "'");
      }
      address.host = std::string(entry.substr(0, colon));
      port_text = entry.substr(colon + 1);
    }
    int64_t port = 0;
    bool valid = !port_text.empty();
    for (const char c : port_text) {
      if (c < '0' || c > '9' || port > 65535) {
        valid = false;
        break;
      }
      port = port * 10 + (c - '0');
    }
    if (!valid || port < 1 || port > 65535) {
      return Status::InvalidArgument("bad shard port in '" +
                                     std::string(entry) + "'");
    }
    address.port = static_cast<uint16_t>(port);
    shards.push_back(std::move(address));
  }
  if (shards.empty()) {
    return Status::InvalidArgument("--shards needs at least one HOST:PORT");
  }
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  // Before any thread exists, so every thread inherits the blocked mask.
  SignalDrain::Global().Install();
  SignalDrain::Global().set_exit_after_callbacks(false);

  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }

  if (args.Has("log-level")) {
    std::string level_name = args.GetString("log-level", "");
    std::optional<LogLevel> level = ParseLogLevel(level_name);
    if (!level) {
      return UsageError("bad --log-level '" + level_name +
                        "' (expected debug, info, warning, or error)");
    }
    SetLogLevel(*level);
  }
  if (args.Has("trace-out")) TraceRecorder::Global().Enable();

  // --- Coordinator configuration. ---
  if (!args.Has("shards")) {
    return UsageError("--shards is required");
  }
  CoordinatorOptions coord_options;
  Result<std::vector<ShardAddress>> shards =
      ResolveShards(args.GetString("shards", ""));
  if (!shards.ok()) return UsageError(shards.status().message());
  coord_options.shards = std::move(*shards);
  Result<std::vector<KeySpec>> keys = ResolveKeys(
      args.GetString("keys", "last-name,first-name,address"));
  if (!keys.ok()) return UsageError(keys.status().message());
  coord_options.keys = std::move(*keys);
  coord_options.keys_spec = CanonicalKeysSpec(
      args.GetString("keys", "last-name,first-name,address"));
  coord_options.schema = employee::MakeSchema();
  const int64_t window = args.GetInt("window", 10);
  if (window < 2) {
    return UsageError("--window must be >= 2 (got " +
                      args.GetString("window", "") + ")");
  }
  coord_options.window = static_cast<size_t>(window);
  const int64_t histogram_depth = args.GetInt("histogram-depth", 3);
  if (histogram_depth < 1 || histogram_depth > 4) {
    return UsageError("--histogram-depth must be in [1, 4] (got " +
                      args.GetString("histogram-depth", "") + ")");
  }
  coord_options.histogram_depth = static_cast<size_t>(histogram_depth);
  const int64_t retry_attempts = args.GetInt("retry-attempts", 12);
  if (retry_attempts < 1) {
    return UsageError("--retry-attempts must be >= 1 (got " +
                      args.GetString("retry-attempts", "") + ")");
  }
  coord_options.retry.max_attempts = static_cast<int>(retry_attempts);

  // --- Server configuration. ---
  ServerOptions server_options;
  const int64_t port = args.GetInt("port", 7734);
  if (port < 0 || port > 65535) {
    return UsageError("--port must be in [0, 65535] (got " +
                      args.GetString("port", "") + ")");
  }
  server_options.port = static_cast<uint16_t>(port);
  const int64_t workers = args.GetInt("workers", 8);
  if (workers < 1) {
    return UsageError("--workers must be >= 1 (got " +
                      args.GetString("workers", "") + ")");
  }
  server_options.num_workers = static_cast<size_t>(workers);
  const int64_t max_conn = args.GetInt("max-conn", 64);
  if (max_conn < 1) {
    return UsageError("--max-conn must be >= 1 (got " +
                      args.GetString("max-conn", "") + ")");
  }
  server_options.max_connections = static_cast<size_t>(max_conn);
  const int64_t max_line = args.GetInt("max-line-bytes", 1 << 20);
  if (max_line < 64) {
    return UsageError("--max-line-bytes must be >= 64 (got " +
                      args.GetString("max-line-bytes", "") + ")");
  }
  server_options.max_line_bytes = static_cast<size_t>(max_line);
  const int64_t idle_timeout = args.GetInt("idle-timeout-ms", 30000);
  if (idle_timeout < 0) {
    return UsageError("--idle-timeout-ms must be >= 0 (got " +
                      args.GetString("idle-timeout-ms", "") + ")");
  }
  server_options.idle_timeout_ms = static_cast<int>(idle_timeout);
  const int64_t slow_request_us = args.GetInt("slow-request-us", 0);
  if (slow_request_us < 0) {
    return UsageError("--slow-request-us must be >= 0 (got " +
                      args.GetString("slow-request-us", "") + ")");
  }
  server_options.slow_request_us = static_cast<int>(slow_request_us);
  server_options.instance_label = args.GetString("instance-label", "");
  // The coordinator's own front door answers hello with the same
  // topology it pushes to its shards.
  server_options.topology_keys = CanonicalKeysSpec(
      args.GetString("keys", "last-name,first-name,address"));
  server_options.topology_window = static_cast<uint64_t>(window);

  CoordService coord(std::move(coord_options));

  // --- Optional eager router fit (otherwise the first upsert fits it). ---
  if (args.Has("router-sample")) {
    const std::string sample_path = args.GetString("router-sample", "");
    Result<Dataset> sample =
        ReadCsvFile(employee::MakeSchema(), sample_path);
    if (!sample.ok()) {
      return Fail("cannot read --router-sample " + sample_path + ": " +
                  sample.status().ToString());
    }
    Status seeded = coord.SeedRouter(sample->records());
    if (!seeded.ok()) {
      return Fail("router fit failed: " + seeded.ToString());
    }
    std::fprintf(stderr,
                 "mergepurge_coord: router fit on %zu sampled records\n",
                 sample->size());
  }

  // --- Shard config handshake: refuse to serve a mismatched fleet.
  // Retries ride out shards still binding or replaying their WAL. ---
  Status verified = coord.VerifyShards();
  if (!verified.ok()) {
    return Fail("shard handshake failed: " + verified.ToString());
  }
  std::fprintf(stderr,
               "mergepurge_coord: %zu shard(s) verified (keys/window)\n",
               coord.num_shards());

  Server server(server_options, &coord);
  SignalDrain::Global().OnSignal(
      [&server](int) { server.RequestDrain(); });

  Result<uint16_t> bound = server.Start();
  if (!bound.ok()) return Fail(bound.status().ToString());
  std::fprintf(stderr,
               "mergepurge_coord: listening on %s:%u, %zu shards\n",
               server_options.bind_address.c_str(), *bound,
               coord.num_shards());
  if (args.Has("port-file")) {
    std::string port_path = args.GetString("port-file", "");
    std::ofstream port_file(port_path, std::ios::trunc);
    port_file << *bound << "\n";
    if (!port_file.good()) {
      server.RequestDrain();
      server.Join();
      return Fail("cannot write port file: " + port_path);
    }
  }

  // Blocks until a drain signal (or RequestDrain) stops the server.
  server.Join();

  CoordService::ClosureStats closure = coord.GetClosureStats();
  if (args.Has("metrics-out")) {
    RunReport report("mergepurge_coord");
    report.SetConfig("port", JsonValue(static_cast<uint64_t>(*bound)));
    report.SetConfig("shards",
                     JsonValue(static_cast<uint64_t>(coord.num_shards())));
    report.SetConfig(
        "keys", JsonValue(args.GetString(
                    "keys", "last-name,first-name,address")));
    report.SetConfig("window", JsonValue(static_cast<uint64_t>(window)));
    report.SetConfig("workers", JsonValue(static_cast<uint64_t>(workers)));
    if (args.Has("instance-label")) {
      report.SetConfig("instance_label",
                       JsonValue(args.GetString("instance-label", "")));
    }
    report.SetDataset(closure.records, employee::kNumFields);
    JsonValue service_json = JsonValue::Object();
    service_json.Set("records", JsonValue(closure.records));
    service_json.Set("entities", JsonValue(closure.entities));
    service_json.Set("connections",
                     JsonValue(server.connections_accepted()));
    report.SetConfig("service", std::move(service_json));
    report.SetOutcome(true);
    report.CaptureMetrics();
    std::string metrics_path = args.GetString("metrics-out", "");
    Status write = report.WriteToFile(metrics_path);
    if (!write.ok()) return Fail(write.ToString());
    std::fprintf(stderr, "wrote run report to %s\n", metrics_path.c_str());
  }
  if (args.Has("trace-out")) {
    std::string trace_path = args.GetString("trace-out", "");
    Status write = TraceRecorder::Global().ExportChromeJson(trace_path);
    if (!write.ok()) return Fail(write.ToString());
    std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                 TraceRecorder::Global().span_count(), trace_path.c_str());
  }
  std::fprintf(stderr,
               "mergepurge_coord: drained (%llu records, %llu entities "
               "global)\n",
               static_cast<unsigned long long>(closure.records),
               static_cast<unsigned long long>(closure.entities));
  return 0;
}
