// mergepurge_deadlockcheck: whole-program static lock-order verification.
//
// Reads the machine-readable lock hierarchy (tools/lock_hierarchy.json),
// scans every .h/.cc under <root>/src, and verifies that the code's
// statically observable nested lock acquisitions obey the declared
// hierarchy:
//
//   * every Mutex/SharedMutex declaration carries a lockrank:: rank and
//     appears in the manifest (and vice versa) — "unranked-mutex",
//     "unknown-rank-symbol", "missing-declaration";
//   * src/util/lock_ranks.h agrees with the manifest's rank numbers —
//     "ranks-header-mismatch";
//   * every nested acquisition (directly, or transitively through the
//     static call graph) is rank-increasing and listed in the manifest's
//     "order" edges — "rank-inversion", "undeclared-edge";
//   * "excludes" pairs are never observed nested in either direction —
//     "excludes-violation" — and functions annotated
//     MERGEPURGE_EXCLUDES(m) are never reached with m held —
//     "excludes-annotation-violation";
//   * the union of manifest and observed edges is acyclic — "cycle";
//   * docs/concurrency.md documents every lock with its rank —
//     "doc-mismatch".
//
// The scanner is a heuristic single-pass C++ reader (comments/strings
// stripped, chunked at ;{}, scope stack for namespace/class/function),
// not a compiler. Its known blind spots — std::function and lambda
// indirection across threads, destructor-time acquisitions, callback
// bodies attributed to their defining function — are exactly what the
// runtime LockOrderValidator in src/util/sync.h covers in sanitizer
// builds. The two checks are designed as a pair.
//
// Suppression: a line (or the line above) may carry
//   // deadlockcheck: allow(<finding-id>)
// to waive one finding id at that site, mirroring lockcheck.py.
//
// Exit codes: 0 clean, 1 findings, 2 usage error.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "obs/json.h"

namespace fs = std::filesystem;
using mergepurge::JsonValue;

namespace {

// ---------------------------------------------------------------------------
// Small utilities.

std::optional<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Last identifier token in `s` ("service_->theory_mu_" -> "theory_mu_").
std::string LastIdent(const std::string& s) {
  int end = static_cast<int>(s.size());
  while (end > 0 && !IsIdentChar(s[end - 1])) --end;
  int begin = end;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return s.substr(begin, end - begin);
}

// Content of the balanced paren group opening at s[open] (== '(');
// empty when unbalanced.
std::string BalancedParens(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return s.substr(open + 1, i - open - 1);
  }
  return "";
}

std::vector<std::string> SplitTopLevelCommas(const std::string& s) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : s) {
    if (c == '(' || c == '<' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// ---------------------------------------------------------------------------
// Findings.

struct Finding {
  std::string file;
  int line = 0;
  std::string id;
  std::string msg;
};

// ---------------------------------------------------------------------------
// Manifest.

struct LockDef {
  std::string name;         // "WalWriter::mu_"
  std::string rank_symbol;  // "kWal"
  int rank = -1;
  bool shared = false;
};

struct ManifestData {
  std::vector<LockDef> locks;
  std::map<std::string, int> rank_by_name;
  std::map<std::string, std::string> name_by_symbol;
  std::set<std::pair<std::string, std::string>> order;  // from -> to
  std::set<std::pair<std::string, std::string>> excludes;  // both directions
  // Scoped RAII type -> lock it acquires ("GatedReaderLock" -> engine).
  std::map<std::string, std::string> scoped_lock;
};

bool ParseManifest(const std::string& path, ManifestData* mf,
                   std::vector<Finding>* findings) {
  auto text = ReadFileToString(path);
  if (!text) {
    std::fprintf(stderr, "deadlockcheck: cannot read manifest %s\n",
                 path.c_str());
    return false;
  }
  auto parsed = JsonValue::Parse(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "deadlockcheck: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue& root = *parsed;
  const JsonValue* locks = root.Find("locks");
  if (locks == nullptr || !locks->is_array()) {
    findings->push_back({path, 1, "bad-manifest-edge",
                         "manifest has no 'locks' array"});
    return true;
  }
  for (const JsonValue& entry : locks->elements()) {
    LockDef def;
    if (const JsonValue* v = entry.Find("name")) def.name = v->string_value();
    if (const JsonValue* v = entry.Find("rank_symbol"))
      def.rank_symbol = v->string_value();
    if (const JsonValue* v = entry.Find("rank"))
      def.rank = static_cast<int>(v->int_value());
    if (const JsonValue* v = entry.Find("kind"))
      def.shared = v->string_value() == "shared";
    if (def.name.empty() || def.rank_symbol.empty() || def.rank < 0) {
      findings->push_back({path, 1, "bad-manifest-edge",
                           "lock entry missing name/rank_symbol/rank: '" +
                               def.name + "'"});
      continue;
    }
    if (mf->rank_by_name.count(def.name) != 0 ||
        mf->name_by_symbol.count(def.rank_symbol) != 0) {
      findings->push_back({path, 1, "duplicate-rank-symbol",
                           "duplicate lock name or rank symbol: " + def.name +
                               " / " + def.rank_symbol});
      continue;
    }
    for (const LockDef& other : mf->locks) {
      if (other.rank == def.rank) {
        findings->push_back({path, 1, "duplicate-rank-symbol",
                             "rank " + std::to_string(def.rank) +
                                 " assigned to both " + other.name + " and " +
                                 def.name});
      }
    }
    mf->rank_by_name[def.name] = def.rank;
    mf->name_by_symbol[def.rank_symbol] = def.name;
    mf->locks.push_back(def);
  }
  if (const JsonValue* order = root.Find("order")) {
    for (const JsonValue& edge : order->elements()) {
      const JsonValue* from = edge.Find("from");
      const JsonValue* to = edge.Find("to");
      if (from == nullptr || to == nullptr) {
        findings->push_back({path, 1, "bad-manifest-edge",
                             "order edge missing from/to"});
        continue;
      }
      const std::string f = from->string_value();
      const std::string t = to->string_value();
      auto fit = mf->rank_by_name.find(f);
      auto tit = mf->rank_by_name.find(t);
      if (fit == mf->rank_by_name.end() || tit == mf->rank_by_name.end()) {
        findings->push_back({path, 1, "bad-manifest-edge",
                             "order edge references unknown lock: " + f +
                                 " -> " + t});
        continue;
      }
      if (fit->second >= tit->second) {
        findings->push_back(
            {path, 1, "bad-manifest-edge",
             "order edge is not rank-increasing: " + f + " (" +
                 std::to_string(fit->second) + ") -> " + t + " (" +
                 std::to_string(tit->second) + ")"});
      }
      mf->order.emplace(f, t);
    }
  }
  if (const JsonValue* ex = root.Find("excludes")) {
    for (const JsonValue& pair : ex->elements()) {
      const JsonValue* a = pair.Find("a");
      const JsonValue* b = pair.Find("b");
      if (a == nullptr || b == nullptr) continue;
      const std::string an = a->string_value();
      const std::string bn = b->string_value();
      if (mf->rank_by_name.count(an) == 0 || mf->rank_by_name.count(bn) == 0) {
        findings->push_back({path, 1, "bad-manifest-edge",
                             "excludes pair references unknown lock: " + an +
                                 " / " + bn});
        continue;
      }
      mf->excludes.emplace(an, bn);
      mf->excludes.emplace(bn, an);
    }
  }
  if (const JsonValue* st = root.Find("scoped_types")) {
    for (const auto& [type, spec] : st->members()) {
      const JsonValue* lock = spec.Find("lock");
      if (lock == nullptr || mf->rank_by_name.count(lock->string_value()) == 0) {
        findings->push_back({path, 1, "bad-manifest-edge",
                             "scoped_types." + type +
                                 " references unknown lock"});
        continue;
      }
      mf->scoped_lock[type] = lock->string_value();
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Source model.

struct FnEvent {
  std::string file;
  int line = 0;
  std::vector<std::string> held;  // lock names held at the site
  std::string target;             // lock name (acquire) or callee key (call)
  bool is_call = false;
};

struct FnInfo {
  // Raw member tokens from annotations; resolved lazily against the
  // function's class once all member maps exist.
  std::vector<std::string> requires_raw;
  std::vector<std::string> acquires_raw;
  std::vector<std::string> excludes_raw;
  std::string cls;  // enclosing class path ("" for free functions)
  std::set<std::string> direct;  // lock names acquired in the body
  std::set<std::string> calls;   // resolved callee keys
  std::set<std::string> trans;   // fixpoint: locks reachable from here
  std::vector<FnEvent> events;
};

struct HeldEntry {
  std::string lock;
  std::string var;  // scoped-lock variable name ("" for raw/REQUIRES)
  size_t depth = 0;  // scope-stack size at declaration
  bool active = true;
};

struct Frame {
  std::string key;    // function key in fns ("Class::Name" or "Name")
  std::string cls;    // class path for member resolution
  size_t depth = 0;   // scope-stack size at function open
  std::vector<HeldEntry> held;
  bool analyzed = true;  // false for bodies we deliberately skip
};

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock } kind;
  std::string name;  // class name component for kClass
  int saved_paren = 0;
};

// multimap emplace that skips exact duplicates (a function seen at both
// its declaration and its definition must still resolve unique-by-name).
void EmplaceUnique(std::multimap<std::string, std::string>& mm,
                   const std::string& key, const std::string& value) {
  auto range = mm.equal_range(key);
  for (auto it = range.first; it != range.second; ++it)
    if (it->second == value) return;
  mm.emplace(key, value);
}

class Checker {
 public:
  ManifestData mf;
  std::vector<Finding> findings;
  bool list_edges = false;

  // file -> line -> allowed finding ids.
  std::map<std::string, std::map<int, std::set<std::string>>> allows;

  std::set<std::string> classes;
  std::multimap<std::string, std::string> class_by_last;  // "RunContext" -> path
  // class path -> member -> lock name.
  std::map<std::string, std::map<std::string, std::string>> member_lock;
  std::multimap<std::string, std::string> member_lock_any;  // member -> lock
  // class path -> member -> member's class-path type.
  std::map<std::string, std::map<std::string, std::string>> member_type;
  std::map<std::string, FnInfo> fns;
  std::multimap<std::string, std::string> fn_by_last;  // "SaveOnce" -> key
  std::map<std::string, std::string> lock_fn;  // "LogMutex" -> lock name
  // rank symbol -> times seen declared in source.
  std::map<std::string, int> symbol_decls;
  // observed (outer, inner) -> first occurrence "file:line".
  std::map<std::pair<std::string, std::string>, std::string> observed;

  // Class-scope statements deferred until all class names are known
  // (member type inference needs the full class set).
  struct PendingMember {
    std::string cls, text, file;
    int line;
  };
  std::vector<PendingMember> pending_members;

  void Report(const std::string& file, int line, const std::string& id,
              const std::string& msg) {
    auto fit = allows.find(file);
    if (fit != allows.end()) {
      for (int l : {line, line - 1}) {
        auto lit = fit->second.find(l);
        if (lit != fit->second.end() && lit->second.count(id) != 0) return;
      }
    }
    findings.push_back({file, line, id, msg});
  }

  // --- Lock / callee resolution ------------------------------------------

  // Resolves a lock expression ("mu_", "service_->theory_mu_",
  // "LogMutex()", "run.mu") to a manifest lock name; "" when unknown.
  std::string ResolveLockExpr(const std::string& expr,
                              const std::string& cls) {
    std::string t = expr;
    while (!t.empty() && (t.back() == ' ' || t.back() == ')')) {
      if (t.back() == ')') {  // lock-returning function call
        std::string fn = LastIdent(t.substr(0, t.find_last_of('(')));
        auto it = lock_fn.find(fn);
        return it == lock_fn.end() ? "" : it->second;
      }
      t.pop_back();
    }
    const std::string member = LastIdent(t);
    if (member.empty()) return "";
    // Innermost class first, then enclosing classes, then unique-anywhere.
    std::string c = cls;
    while (true) {
      auto cit = member_lock.find(c);
      if (cit != member_lock.end()) {
        auto mit = cit->second.find(member);
        if (mit != cit->second.end()) return mit->second;
      }
      size_t pos = c.rfind("::");
      if (pos == std::string::npos) break;
      c = c.substr(0, pos);
    }
    auto range = member_lock_any.equal_range(member);
    if (std::distance(range.first, range.second) == 1)
      return range.first->second;
    auto fit = lock_fn.find(member);
    if (fit != lock_fn.end()) return fit->second;
    return "";
  }

  // Member variable -> class-path type, innermost class first.
  std::string ResolveMemberType(const std::string& member,
                                const std::string& cls) {
    std::string c = cls;
    while (true) {
      auto cit = member_type.find(c);
      if (cit != member_type.end()) {
        auto mit = cit->second.find(member);
        if (mit != cit->second.end()) return mit->second;
      }
      size_t pos = c.rfind("::");
      if (pos == std::string::npos) break;
      c = c.substr(0, pos);
    }
    // Unique member name across all classes.
    std::string found;
    for (const auto& [cpath, members] : member_type) {
      auto mit = members.find(member);
      if (mit != members.end()) {
        if (!found.empty()) return "";
        found = mit->second;
      }
    }
    return found;
  }

  // Function key lookup: exact, then unique-by-last-component.
  std::string ResolveFn(const std::string& cls, const std::string& name) {
    if (!cls.empty()) {
      std::string c = cls;
      while (true) {
        const std::string key = c + "::" + name;
        if (fns.count(key) != 0) return key;
        size_t pos = c.rfind("::");
        if (pos == std::string::npos) break;
        c = c.substr(0, pos);
      }
    }
    if (fns.count(name) != 0) return name;
    auto range = fn_by_last.equal_range(name);
    if (std::distance(range.first, range.second) == 1)
      return range.first->second;
    return "";
  }
};

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// Normalization: comments, string/char literals and preprocessor lines are
// blanked (newlines kept so line numbers survive); [[...]] attributes are
// erased; `{lockrank::kX}` brace-initializers become `(lockrank::kX)` so
// the chunker below does not mistake them for scopes. Length-preserving.

const std::regex kAllowRe(R"(deadlockcheck:\s*allow\(([a-z-]+)\))");

void CollectAllows(Checker& ck, const std::string& file,
                   const std::string& text) {
  int line = 1;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string l = text.substr(start, end - start);
    std::smatch m;
    if (std::regex_search(l, m, kAllowRe)) ck.allows[file][line].insert(m[1]);
    start = end + 1;
    ++line;
  }
}

std::string Normalize(const std::string& in) {
  std::string out = in;
  enum { kCode, kLine, kBlock, kStr, kChar, kRaw } st = kCode;
  std::string raw_delim;
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char n = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') { st = kLine; out[i] = ' '; }
        else if (c == '/' && n == '*') { st = kBlock; out[i] = ' '; }
        else if (c == '"') {
          // Raw string literal R"delim( ... )delim".
          if (i > 0 && out[i - 1] == 'R') {
            size_t p = out.find('(', i);
            if (p != std::string::npos) {
              raw_delim = ")" + out.substr(i + 1, p - i - 1) + "\"";
              st = kRaw;
              out[i - 1] = ' ';
            }
          } else {
            st = kStr;
          }
          out[i] = ' ';
        }
        else if (c == '\'') { st = kChar; out[i] = ' '; }
        else if (c == '#' &&
                 (i == 0 || out[i - 1] == '\n')) { st = kLine; out[i] = ' '; }
        break;
      case kLine:
        if (c == '\n') {
          // A trailing backslash continues the (preprocessor) line.
          size_t b = i;
          while (b > 0 && (out[b - 1] == ' ' || out[b - 1] == '\r')) --b;
          if (!(b > 0 && out[b - 1] == '\\')) st = kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case kBlock:
        if (c == '*' && n == '/') { out[i] = ' '; out[i + 1] = ' '; ++i; st = kCode; }
        else if (c != '\n') out[i] = ' ';
        break;
      case kStr:
        if (c == '\\') { out[i] = ' '; if (n != '\n') { out[i + 1] = ' '; ++i; } }
        else if (c == '"') { out[i] = ' '; st = kCode; }
        else if (c != '\n') out[i] = ' ';
        break;
      case kChar:
        if (c == '\\') { out[i] = ' '; if (n != '\n') { out[i + 1] = ' '; ++i; } }
        else if (c == '\'') { out[i] = ' '; st = kCode; }
        else if (c != '\n') out[i] = ' ';
        break;
      case kRaw:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  // [[...]] attributes.
  for (size_t p = out.find("[["); p != std::string::npos;
       p = out.find("[[", p)) {
    size_t e = out.find("]]", p);
    if (e == std::string::npos) break;
    for (size_t k = p; k < e + 2; ++k)
      if (out[k] != '\n') out[k] = ' ';
    p = e + 2;
  }
  // {lockrank::kX} -> (lockrank::kX).
  static const std::regex kBraceInit(R"(\{\s*lockrank::\w+\s*\})");
  auto begin = std::sregex_iterator(out.begin(), out.end(), kBraceInit);
  std::vector<std::pair<size_t, size_t>> spans;
  for (auto it = begin; it != std::sregex_iterator(); ++it)
    spans.emplace_back(it->position(), it->length());
  for (auto [pos, len] : spans) {
    out[pos] = '(';
    out[pos + len - 1] = ')';
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scanner.

const std::set<std::string> kKeywords = {
    "if", "else", "for", "while", "switch", "do", "return", "new", "delete",
    "sizeof", "alignof", "alignas", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "catch", "try", "throw", "case",
    "default", "template", "typename", "using", "namespace", "operator",
    "assert", "static_assert", "decltype", "noexcept", "constexpr", "const",
    "struct", "class", "enum", "break", "continue", "goto", "public",
    "private", "protected", "virtual", "override", "final", "inline",
    "static", "void", "bool", "char", "int", "unsigned", "long", "short",
    "float", "double", "auto", "size_t", "uint64_t", "int64_t", "uint32_t",
    "int32_t", "uint8_t", "lockrank", "explicit", "mutable", "defined",
    "Lock", "Unlock", "LockShared", "UnlockShared", "TryLock", "Wait",
    "Mutex", "SharedMutex", "CondVar"};

const std::regex kClassRe(R"((class|struct)\s+([A-Za-z_][\w:]*))");
const std::regex kControlRe(R"(^\s*(if|else|for|while|switch|do|try|catch)\b)");
// Capture lists may contain one level of nested brackets, e.g.
// `[this, call = &(*calls)[i]]`.
const std::regex kLambdaRe(R"(\[(?:[^\[\]]|\[[^\[\]]*\])*\]\s*[\(\{]?\s*$)");
const std::regex kLambdaParamRe(R"(\[(?:[^\[\]]|\[[^\[\]]*\])*\]\s*\()");
const std::regex kMutexHit(R"(\b(Mutex|SharedMutex)\b)");
const std::regex kLockrankSym(R"(lockrank::(\w+))");
const std::regex kNewMutex(R"(new\s+(Mutex|SharedMutex)\s*\()");
const std::regex kRawLockCall(
    R"(((?:\w+(?:::|\.|->))*\w+)(?:\.|->)(Lock|LockShared|Unlock|UnlockShared|TryLock)\s*\()");
const std::regex kCallRe(R"((\w+)\s*\()");
const std::regex kMacroRe(R"(MERGEPURGE_([A-Z_]+)\s*\()");
const std::regex kCtorStyleRe(R"(^\s*(?:const\s+)?([A-Za-z_][\w:]*)\s+(\w+)\s*\()");

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Identifier (possibly qualified, '~' stripped) ending right before `pos`.
std::string QualifiedIdentBefore(const std::string& s, size_t pos) {
  int end = static_cast<int>(pos);
  while (end > 0 && std::isspace(static_cast<unsigned char>(s[end - 1])))
    --end;
  int begin = end;
  while (begin > 0 && (IsIdentChar(s[begin - 1]) || s[begin - 1] == ':' ||
                       s[begin - 1] == '~'))
    --begin;
  std::string out = s.substr(begin, end - begin);
  out.erase(std::remove(out.begin(), out.end(), '~'), out.end());
  while (!out.empty() && out.front() == ':') out.erase(out.begin());
  return out;
}

struct MacroHit {
  std::string kind;  // "REQUIRES", "ACQUIRE", "EXCLUDES", ...
  std::vector<std::string> args;  // last-identifier of each argument
};

// Extracts MERGEPURGE_* macro invocations and blanks them out of `s`.
std::vector<MacroHit> ExtractMacros(std::string* s) {
  std::vector<MacroHit> hits;
  std::smatch m;
  std::string& text = *s;
  size_t search = 0;
  while (true) {
    const std::string tail = text.substr(search);
    if (!std::regex_search(tail, m, kMacroRe)) break;
    const size_t at = search + m.position(0);
    const size_t open = search + m.position(0) + m.length(0) - 1;
    const std::string body = BalancedParens(text, open);
    MacroHit hit;
    hit.kind = m[1];
    for (const std::string& arg : SplitTopLevelCommas(body)) {
      const std::string id = LastIdent(arg);
      if (!id.empty()) hit.args.push_back(id);
    }
    const size_t close = open + body.size() + 2;
    for (size_t k = at; k < close && k < text.size(); ++k) text[k] = ' ';
    hits.push_back(std::move(hit));
    search = close;
  }
  return hits;
}

class FileScanner {
 public:
  FileScanner(Checker& ck, std::string file, const std::string& text,
              int pass, const std::regex& scoped_re)
      : ck_(ck), file_(std::move(file)), text_(text), pass_(pass),
        scoped_re_(scoped_re) {}

  void Run() {
    int line = 1, chunk_line = 1, paren = 0;
    std::string chunk;
    for (size_t i = 0; i < text_.size(); ++i) {
      const char c = text_[i];
      if (c == '\n') { ++line; chunk.push_back(' '); continue; }
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (c == ';' && paren == 0) {
        Statement(chunk, chunk_line);
        chunk.clear();
        chunk_line = line;
        continue;
      }
      if (c == '{') {
        Open(chunk, chunk_line, paren);
        paren = 0;
        chunk.clear();
        chunk_line = line;
        continue;
      }
      if (c == '}') {
        if (!Trimmed(chunk).empty()) Statement(chunk, chunk_line);
        chunk.clear();
        chunk_line = line;
        if (!scopes_.empty()) {
          paren = scopes_.back().saved_paren;
          Close();
        }
        continue;
      }
      if (Trimmed(chunk).empty() && !std::isspace(static_cast<unsigned char>(c)))
        chunk_line = line;
      chunk.push_back(c);
    }
  }

 private:
  std::string ClassPath() const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.kind != Scope::kClass) continue;
      if (!out.empty()) out += "::";
      out += s.name;
    }
    return out;
  }

  void Open(const std::string& header, int line, int paren) {
    Scope scope;
    scope.saved_paren = paren;
    const std::string h = Trimmed(header);
    // Truncate at the base-clause ':' (not '::') for classification.
    std::string head = h;
    for (size_t i = 0; i < head.size(); ++i) {
      if (head[i] != ':') continue;
      if ((i + 1 < head.size() && head[i + 1] == ':') ||
          (i > 0 && head[i - 1] == ':')) continue;
      head = head.substr(0, i);
      break;
    }
    std::smatch m;
    const bool is_enum = std::regex_search(head, m, std::regex(R"(\benum\b)"));
    std::string no_alignas =
        std::regex_replace(head, std::regex(R"(alignas\s*\([^)]*\))"), " ");
    if (!is_enum && std::regex_search(head, m, std::regex(R"(\bnamespace\b)")) &&
        head.find('(') == std::string::npos) {
      scope.kind = Scope::kNamespace;
    } else if (!is_enum && no_alignas.find('(') == std::string::npos &&
               LastClassName(no_alignas, &scope.name)) {
      scope.kind = Scope::kClass;
    } else if (std::regex_search(h, m, kLambdaParamRe) ||
               std::regex_search(h, m, kLambdaRe)) {
      scope.kind = Scope::kLambda;
      if (pass_ == 2) PushLambdaFrame(line);
    } else if (std::regex_search(h, m, kControlRe) || is_enum) {
      scope.kind = Scope::kBlock;
    } else if (h.find('(') != std::string::npos) {
      const std::string name = QualifiedIdentBefore(h, h.find('('));
      // `x.f(...) {` headers are call expressions (usually a lambda argument
      // whose capture list defeated the lambda regexes), not definitions.
      int end = static_cast<int>(h.find('('));
      while (end > 0 && std::isspace(static_cast<unsigned char>(h[end - 1])))
        --end;
      int begin = end;
      while (begin > 0 && (IsIdentChar(h[begin - 1]) || h[begin - 1] == ':' ||
                           h[begin - 1] == '~'))
        --begin;
      const bool method_call =
          begin > 0 && (h[begin - 1] == '.' ||
                        (begin > 1 && h[begin - 2] == '-' && h[begin - 1] == '>'));
      if (name.empty() || kKeywords.count(name) != 0 || method_call) {
        scope.kind = Scope::kBlock;
      } else {
        scope.kind = Scope::kFunction;
        FunctionOpen(h, name, line);
      }
    } else {
      scope.kind = Scope::kBlock;
    }
    scopes_.push_back(scope);
    if (scope.kind == Scope::kClass && pass_ == 1) {
      const std::string path = ClassPath();
      ck_.classes.insert(path);
      EmplaceUnique(ck_.class_by_last, LastIdent(scope.name), path);
    }
  }

  static bool LastClassName(const std::string& head, std::string* name) {
    auto begin = std::sregex_iterator(head.begin(), head.end(), kClassRe);
    std::string last;
    for (auto it = begin; it != std::sregex_iterator(); ++it)
      last = (*it)[2];
    if (last.empty()) return false;
    *name = last;
    return true;
  }

  void FunctionOpen(const std::string& header, const std::string& name,
                    int /*line*/) {
    const std::string cls = ClassPath();
    std::string key;
    if (!cls.empty()) key = cls + "::" + name;
    else key = name;
    // Ctors/dtors collapse ("TheoryLease::TheoryLease" and the dtor share
    // a record); that is intentional — their acquisitions pool.
    std::string fn_cls = key;
    const size_t pos = fn_cls.rfind("::");
    fn_cls = pos == std::string::npos ? "" : fn_cls.substr(0, pos);
    if (pass_ == 1) {
      FnInfo& fn = ck_.fns[key];
      fn.cls = fn_cls;
      EmplaceUnique(ck_.fn_by_last, LastIdent(name), key);
      last_fn_key_ = key;
      std::string text = header;
      for (const MacroHit& hit : ExtractMacros(&text)) Annotate(&fn, hit);
    } else {
      Frame frame;
      frame.key = key;
      frame.cls = fn_cls;
      frame.depth = scopes_.size() + 1;
      auto it = ck_.fns.find(key);
      if (it != ck_.fns.end()) {
        for (const std::string& member : it->second.requires_raw) {
          const std::string lock = ck_.ResolveLockExpr(member, fn_cls);
          if (!lock.empty())
            frame.held.push_back({lock, "", frame.depth, true});
        }
      }
      frames_.push_back(std::move(frame));
    }
  }

  void PushLambdaFrame(int line) {
    // A lambda body is analyzed as its own anonymous function: its
    // acquisitions are checked in isolation, but it is unreachable
    // through the call graph (callbacks run on unknown threads — the
    // runtime validator owns those orderings).
    Frame frame;
    frame.key = file_ + ":" + std::to_string(line) + ":lambda";
    frame.cls = ClassPath().empty() && !frames_.empty() ? frames_.back().cls
                                                        : ClassPath();
    frame.depth = scopes_.size() + 1;
    ck_.fns[frame.key].cls = frame.cls;
    frames_.push_back(std::move(frame));
  }

  static void Annotate(FnInfo* fn, const MacroHit& hit) {
    if (hit.kind == "REQUIRES" || hit.kind == "REQUIRES_SHARED") {
      fn->requires_raw.insert(fn->requires_raw.end(), hit.args.begin(),
                              hit.args.end());
    } else if (hit.kind == "ACQUIRE" || hit.kind == "ACQUIRE_SHARED") {
      fn->acquires_raw.insert(fn->acquires_raw.end(), hit.args.begin(),
                              hit.args.end());
    } else if (hit.kind == "EXCLUDES") {
      fn->excludes_raw.insert(fn->excludes_raw.end(), hit.args.begin(),
                              hit.args.end());
    }
  }

  void Close() {
    const size_t size = scopes_.size();
    if (!frames_.empty()) {
      if (frames_.back().depth == size) {
        frames_.pop_back();
      } else {
        auto& held = frames_.back().held;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [size](const HeldEntry& e) {
                                    return e.depth >= size;
                                  }),
                   held.end());
      }
    }
    scopes_.pop_back();
  }

  // --- Statements ---------------------------------------------------------

  void Statement(const std::string& raw, int line) {
    if (pass_ == 1) {
      if (!scopes_.empty() && scopes_.back().kind == Scope::kClass) {
        ClassStatement(raw, line);
      } else if (InFunction()) {
        FunctionScopeDecls(raw, line);
      }
      return;
    }
    if (!frames_.empty()) BodyStatement(raw, line);
  }

  bool InFunction() const {
    for (const Scope& s : scopes_)
      if (s.kind == Scope::kFunction || s.kind == Scope::kLambda) return true;
    return false;
  }

  // Pass 1, class scope: mutex members, member types, method annotations.
  void ClassStatement(const std::string& raw, int line) {
    const std::string cls = ClassPath();
    std::string text = raw;
    std::vector<MacroHit> macros = ExtractMacros(&text);
    bool was_mutex_decl = false;
    for (auto it = std::sregex_iterator(text.begin(), text.end(), kMutexHit);
         it != std::sregex_iterator(); ++it) {
      size_t after = it->position(0) + it->length(0);
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after])))
        ++after;
      if (after < text.size() && (text[after] == '*' || text[after] == '&'))
        continue;  // pointer/ref member or Mutex&-returning accessor
      size_t end = after;
      while (end < text.size() && IsIdentChar(text[end])) ++end;
      const std::string member = text.substr(after, end - after);
      if (member.empty()) continue;
      was_mutex_decl = true;
      RegisterMutexDecl(cls, member, raw, line);
    }
    if (was_mutex_decl) return;
    if (text.find('(') != std::string::npos) {
      const std::string name = QualifiedIdentBefore(text, text.find('('));
      if (name.empty() || kKeywords.count(name) != 0) return;
      const std::string key = cls.empty() ? name : cls + "::" + name;
      FnInfo& fn = ck_.fns[key];
      fn.cls = cls;
      EmplaceUnique(ck_.fn_by_last, LastIdent(name), key);
      for (const MacroHit& hit : macros) Annotate(&fn, hit);
    } else {
      ck_.pending_members.push_back({cls, text, file_, line});
    }
  }

  void RegisterMutexDecl(const std::string& cls, const std::string& member,
                         const std::string& stmt, int line) {
    std::smatch m;
    if (!std::regex_search(stmt, m, kLockrankSym) || m[1] == "kUnranked") {
      ck_.Report(file_, line, "unranked-mutex",
                 "Mutex '" + cls + "::" + member +
                     "' has no lockrank:: rank; every lock must join the "
                     "hierarchy in tools/lock_hierarchy.json");
      return;
    }
    const std::string symbol = m[1];
    auto it = ck_.mf.name_by_symbol.find(symbol);
    if (it == ck_.mf.name_by_symbol.end()) {
      ck_.Report(file_, line, "unknown-rank-symbol",
                 "lockrank::" + symbol + " (on " + cls + "::" + member +
                     ") is not in the manifest");
      return;
    }
    const std::string derived = cls + "::" + member;
    if (it->second != derived) {
      ck_.Report(file_, line, "missing-declaration",
                 "manifest names lockrank::" + symbol + " '" + it->second +
                     "' but the declaration is '" + derived + "'");
    }
    ++ck_.symbol_decls[symbol];
    ck_.member_lock[cls][member] = it->second;
    EmplaceUnique(ck_.member_lock_any, member, it->second);
  }

  // Pass 1, function scope: `new Mutex(lockrank::kX)` registers the
  // enclosing function as lock-returning (the leaked-singleton idiom).
  void FunctionScopeDecls(const std::string& raw, int line) {
    std::smatch m;
    if (!std::regex_search(raw, m, kNewMutex)) return;
    std::smatch sym;
    if (!std::regex_search(raw, sym, kLockrankSym) || sym[1] == "kUnranked") {
      ck_.Report(file_, line, "unranked-mutex",
                 "new Mutex without a lockrank:: rank");
      return;
    }
    auto it = ck_.mf.name_by_symbol.find(sym[1]);
    if (it == ck_.mf.name_by_symbol.end()) {
      ck_.Report(file_, line, "unknown-rank-symbol",
                 "lockrank::" + std::string(sym[1]) + " is not in the manifest");
      return;
    }
    ++ck_.symbol_decls[sym[1]];
    // The leaked singleton lives in whichever function's body declares it
    // (e.g. LogMutex()); callers acquire it through that function's name.
    if (!last_fn_key_.empty())
      ck_.lock_fn[LastIdent(last_fn_key_)] = it->second;
  }

  // --- Pass 2: body analysis ---------------------------------------------

  std::vector<std::string> HeldNames(const Frame& frame) const {
    std::vector<std::string> out;
    for (const HeldEntry& e : frame.held) {
      if (!e.active) continue;
      if (std::find(out.begin(), out.end(), e.lock) == out.end())
        out.push_back(e.lock);
    }
    return out;
  }

  void RecordAcquire(Frame& frame, const std::string& lock,
                     const std::string& var, int line, bool event = true) {
    FnInfo& fn = ck_.fns[frame.key];
    if (event) {
      const std::vector<std::string> held = HeldNames(frame);
      if (!held.empty())
        fn.events.push_back({file_, line, held, lock, false});
      fn.direct.insert(lock);
    }
    frame.held.push_back({lock, var, scopes_.size(), true});
  }

  void RecordCall(Frame& frame, const std::string& callee, int line) {
    if (callee.empty() || callee == frame.key) return;
    FnInfo& fn = ck_.fns[frame.key];
    fn.calls.insert(callee);
    const std::vector<std::string> held = HeldNames(frame);
    if (!held.empty()) fn.events.push_back({file_, line, held, callee, true});
  }

  void BodyStatement(const std::string& raw, int line) {
    Frame& frame = frames_.back();
    const std::string& cls = frame.cls;
    std::set<size_t> consumed;  // call-regex positions already handled

    if (raw.find("MERGEPURGE_LOG") != std::string::npos)
      RecordCall(frame, ck_.ResolveFn("", "LogMessage"), line);

    // Scoped RAII acquisitions: MutexLock/WriterLock/ReaderLock plus the
    // manifest's scoped_types.
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), scoped_re_);
         it != std::sregex_iterator(); ++it) {
      const std::string type = (*it)[1];
      const std::string var = (*it)[2];
      const size_t open = it->position(0) + it->length(0) - 1;
      consumed.insert(it->position(0));
      std::string lock;
      auto st = ck_.mf.scoped_lock.find(type);
      if (st != ck_.mf.scoped_lock.end()) {
        lock = st->second;
      } else {
        const std::string expr = BalancedParens(raw, open);
        lock = ck_.ResolveLockExpr(expr, cls);
        if (lock.empty()) {
          ck_.Report(file_, line, "unresolved-lock",
                     type + " " + var + "(" + Trimmed(expr) +
                         "): cannot resolve the lock expression");
          continue;
        }
      }
      RecordAcquire(frame, lock, var, line);
    }

    // Raw .Lock()/.Unlock() calls, and scoped-variable relock toggles.
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kRawLockCall);
         it != std::sregex_iterator(); ++it) {
      const std::string expr = (*it)[1];
      const std::string method = (*it)[2];
      consumed.insert(it->position(0));
      // Scoped-lock variable toggle?
      bool toggled = false;
      if (expr.find('.') == std::string::npos &&
          expr.find("->") == std::string::npos) {
        for (auto hit = frame.held.rbegin(); hit != frame.held.rend(); ++hit) {
          if (hit->var != expr || hit->var.empty()) continue;
          if (method == "Unlock" || method == "UnlockShared")
            hit->active = false;
          else
            hit->active = true;
          toggled = true;
          break;
        }
      }
      if (toggled) continue;
      const std::string lock = ck_.ResolveLockExpr(expr, cls);
      if (lock.empty()) {
        ck_.Report(file_, line, "unresolved-lock",
                   expr + "." + method + "(): cannot resolve the lock");
        continue;
      }
      if (method == "Lock" || method == "LockShared") {
        RecordAcquire(frame, lock, "", line);
      } else if (method == "TryLock") {
        // Non-blocking: held afterwards, but no ordering obligation.
        RecordAcquire(frame, lock, "", line, /*event=*/false);
      } else {
        for (auto hit = frame.held.rbegin(); hit != frame.held.rend(); ++hit) {
          if (hit->lock == lock && hit->var.empty()) {
            frame.held.erase(std::next(hit).base());
            break;
          }
        }
      }
    }

    // Constructor-style RAII ("TheoryLease theory(this);").
    std::smatch ctor;
    if (std::regex_search(raw, ctor, kCtorStyleRe)) {
      const std::string type = ctor[1];
      const std::string last = LastIdent(type);
      if (kKeywords.count(last) == 0 &&
          ck_.mf.scoped_lock.count(last) == 0 && last != "MutexLock" &&
          last != "WriterLock" && last != "ReaderLock") {
        std::string cls_path;
        if (ck_.classes.count(type) != 0) {
          cls_path = type;
        } else {
          auto range = ck_.class_by_last.equal_range(last);
          if (std::distance(range.first, range.second) == 1)
            cls_path = range.first->second;
        }
        if (!cls_path.empty()) {
          const std::string key = cls_path + "::" + LastIdent(cls_path);
          if (ck_.fns.count(key) != 0) RecordCall(frame, key, line);
        }
      }
    }

    // General calls.
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), kCallRe);
         it != std::sregex_iterator(); ++it) {
      const size_t at = it->position(1);
      if (consumed.count(it->position(0)) != 0) continue;
      const std::string tok = (*it)[1];
      if (kKeywords.count(tok) != 0 || tok.rfind("MERGEPURGE_", 0) == 0 ||
          tok == "MutexLock" || tok == "WriterLock" || tok == "ReaderLock" ||
          ck_.mf.scoped_lock.count(tok) != 0)
        continue;
      std::string callee;
      size_t before = at;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(raw[before - 1])))
        --before;
      if (before >= 2 && raw[before - 1] == ':' && raw[before - 2] == ':') {
        const std::string qual =
            QualifiedIdentBefore(raw, at + tok.size());
        if (ck_.fns.count(qual) != 0) callee = qual;
      } else if (before >= 1 &&
                 (raw[before - 1] == '.' ||
                  (before >= 2 && raw[before - 2] == '-' &&
                   raw[before - 1] == '>'))) {
        const size_t recv_end =
            raw[before - 1] == '.' ? before - 1 : before - 2;
        size_t b = recv_end;
        while (b > 0 && std::isspace(static_cast<unsigned char>(raw[b - 1])))
          --b;
        if (b > 0 && raw[b - 1] == ')') {
          callee = ck_.ResolveFn("", tok);  // chained: unique-by-name
        } else {
          const std::string recv =
              LastIdent(raw.substr(0, recv_end));
          const std::string type = ck_.ResolveMemberType(recv, cls);
          callee = !type.empty() ? ck_.ResolveFn(type, tok)
                                 : ck_.ResolveFn("", tok);
        }
      } else {
        callee = ck_.ResolveFn(cls, tok);
      }
      if (!callee.empty()) RecordCall(frame, callee, line);
    }
  }

  Checker& ck_;
  std::string file_;
  const std::string& text_;
  int pass_;
  const std::regex& scoped_re_;
  std::vector<Scope> scopes_;
  std::vector<Frame> frames_;

 public:
  // Pass 1 tracks the most recent function header so that function-scope
  // `new Mutex(...)` declarations attribute to it (see FunctionScopeDecls).
  std::string last_fn_key_;
};

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// Analysis over the collected model.

void ResolvePendingMembers(Checker& ck) {
  for (const auto& pm : ck.pending_members) {
    std::string text = pm.text.substr(0, pm.text.find('='));
    const std::string member = LastIdent(text);
    if (member.empty() || kKeywords.count(member) != 0) continue;
    // First identifier token that names a known class is the member's type
    // ("std::unique_ptr<WalWriter> wal_" -> WalWriter).
    static const std::regex ident_re(R"([A-Za-z_]\w*)");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), ident_re);
         it != std::sregex_iterator(); ++it) {
      const std::string tok = it->str();
      if (tok == member || kKeywords.count(tok) != 0) continue;
      std::string path;
      if (ck.classes.count(tok) != 0) {
        path = tok;
      } else {
        auto range = ck.class_by_last.equal_range(tok);
        if (std::distance(range.first, range.second) == 1)
          path = range.first->second;
      }
      if (!path.empty()) {
        ck.member_type[pm.cls][member] = path;
        break;
      }
    }
  }
}

void CheckSymbolCoverage(Checker& ck, const std::string& manifest_path) {
  for (const LockDef& def : ck.mf.locks) {
    const int n = ck.symbol_decls.count(def.rank_symbol) != 0
                      ? ck.symbol_decls[def.rank_symbol]
                      : 0;
    if (n == 0) {
      ck.Report(manifest_path, 1, "missing-declaration",
                "manifest lock '" + def.name + "' (lockrank::" +
                    def.rank_symbol + ") has no declaration in the source");
    } else if (n > 1) {
      ck.Report(manifest_path, 1, "duplicate-rank-symbol",
                "lockrank::" + def.rank_symbol + " is used by " +
                    std::to_string(n) + " declarations; ranks are per-lock");
    }
  }
}

void ComputeTransitiveAcquires(Checker& ck) {
  for (auto& [key, fn] : ck.fns) {
    for (const std::string& member : fn.acquires_raw) {
      const std::string lock = ck.ResolveLockExpr(member, fn.cls);
      if (!lock.empty()) fn.direct.insert(lock);
    }
    fn.trans = fn.direct;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [key, fn] : ck.fns) {
      for (const std::string& callee : fn.calls) {
        auto it = ck.fns.find(callee);
        if (it == ck.fns.end()) continue;
        for (const std::string& lock : it->second.trans) {
          if (fn.trans.insert(lock).second) changed = true;
        }
      }
    }
  }
}

void CheckEvents(Checker& ck) {
  std::set<std::string> seen;  // "<id>|<outer>|<inner>" dedupe
  auto once = [&seen](const std::string& id, const std::string& h,
                      const std::string& a) {
    return seen.insert(id + "|" + h + "|" + a).second;
  };
  for (auto& [key, fn] : ck.fns) {
    for (const FnEvent& ev : fn.events) {
      std::vector<std::string> targets;
      if (ev.is_call) {
        auto it = ck.fns.find(ev.target);
        if (it == ck.fns.end()) continue;
        targets.assign(it->second.trans.begin(), it->second.trans.end());
        for (const std::string& member : it->second.excludes_raw) {
          const std::string lock =
              ck.ResolveLockExpr(member, it->second.cls);
          if (lock.empty()) continue;
          if (std::find(ev.held.begin(), ev.held.end(), lock) !=
                  ev.held.end() &&
              once("excludes-annotation-violation", lock, ev.target)) {
            ck.Report(ev.file, ev.line, "excludes-annotation-violation",
                      ev.target + " is annotated MERGEPURGE_EXCLUDES(" +
                          member + ") but is reached with " + lock +
                          " held");
          }
        }
      } else {
        targets.push_back(ev.target);
      }
      for (const std::string& h : ev.held) {
        const int rank_h = ck.mf.rank_by_name.count(h) != 0
                               ? ck.mf.rank_by_name[h]
                               : -1;
        for (const std::string& a : targets) {
          if (a == h) {
            if (once("rank-inversion", h, a)) {
              ck.Report(ev.file, ev.line, "rank-inversion",
                        (ev.is_call ? ev.target + " re-acquires " : "") + a +
                            " while it is already held (self-deadlock)");
            }
            continue;
          }
          ck.observed.emplace(
              std::make_pair(h, a),
              ev.file + ":" + std::to_string(ev.line) +
                  (ev.is_call ? " via " + ev.target : ""));
          const int rank_a = ck.mf.rank_by_name.count(a) != 0
                                 ? ck.mf.rank_by_name[a]
                                 : -1;
          if (ck.mf.excludes.count({h, a}) != 0) {
            if (once("excludes-violation", h, a)) {
              ck.Report(ev.file, ev.line, "excludes-violation",
                        a + " acquired with " + h +
                            " held, but the manifest EXCLUDES the pair" +
                            (ev.is_call ? " (via " + ev.target + ")" : ""));
            }
          } else if (rank_a <= rank_h) {
            if (once("rank-inversion", h, a)) {
              ck.Report(ev.file, ev.line, "rank-inversion",
                        a + " (rank " + std::to_string(rank_a) +
                            ") acquired with " + h + " (rank " +
                            std::to_string(rank_h) + ") held" +
                            (ev.is_call ? " via " + ev.target : "") +
                            "; ranks must strictly increase inward");
            }
          } else if (ck.mf.order.count({h, a}) == 0) {
            if (once("undeclared-edge", h, a)) {
              ck.Report(ev.file, ev.line, "undeclared-edge",
                        "observed nesting " + h + " -> " + a +
                            (ev.is_call ? " (via " + ev.target + ")" : "") +
                            " is not declared in lock_hierarchy.json 'order'");
            }
          }
        }
      }
    }
  }
}

void CheckCycles(Checker& ck, const std::string& manifest_path) {
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [f, t] : ck.mf.order) adj[f].insert(t);
  for (const auto& [edge, site] : ck.observed) adj[edge.first].insert(edge.second);
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& node) -> bool {
    color[node] = 1;
    path.push_back(node);
    for (const std::string& next : adj[node]) {
      if (color[next] == 1) {
        std::string cycle = next;
        for (auto it = std::find(path.begin(), path.end(), next);
             it != path.end(); ++it) {
          if (*it != next) cycle += " -> " + *it;
        }
        cycle += " -> " + next;
        ck.Report(manifest_path, 1, "cycle",
                  "lock-order cycle: " + cycle);
        return true;
      }
      if (color[next] == 0 && dfs(next)) return true;
    }
    path.pop_back();
    color[node] = 2;
    return false;
  };
  for (const auto& [node, _] : adj) {
    if (color[node] == 0 && dfs(node)) return;  // one cycle is enough
  }
}

void CheckRanksHeader(Checker& ck, const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text) {
    ck.Report(path, 1, "ranks-header-mismatch", "cannot read ranks header");
    return;
  }
  for (const LockDef& def : ck.mf.locks) {
    std::smatch m;
    const std::regex re("\\b" + def.rank_symbol + "\\s*=\\s*(-?\\d+)");
    if (!std::regex_search(*text, m, re)) {
      ck.Report(path, 1, "ranks-header-mismatch",
                def.rank_symbol + " is in the manifest but not defined in " +
                    path);
      continue;
    }
    const int value = std::atoi(m[1].str().c_str());
    if (value != def.rank) {
      ck.Report(path, 1, "ranks-header-mismatch",
                def.rank_symbol + " = " + std::to_string(value) +
                    " in the header but rank " + std::to_string(def.rank) +
                    " in the manifest");
    }
  }
}

void CheckDocs(Checker& ck, const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text) {
    ck.Report(path, 1, "doc-mismatch", "cannot read " + path);
    return;
  }
  std::vector<std::string> lines;
  std::istringstream in(*text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  for (const LockDef& def : ck.mf.locks) {
    const std::regex rank_re("(^|[^0-9.])" + std::to_string(def.rank) +
                             "([^0-9.]|$)");
    bool found = false;
    for (const std::string& l : lines) {
      std::smatch m;
      if (l.find(def.name) != std::string::npos &&
          std::regex_search(l, m, rank_re)) {
        found = true;
        break;
      }
    }
    if (!found) {
      ck.Report(path, 1, "doc-mismatch",
                "lock '" + def.name + "' (rank " + std::to_string(def.rank) +
                    ") is not documented with its rank; regenerate the "
                    "hierarchy table from tools/lock_hierarchy.json");
    }
  }
}

// ---------------------------------------------------------------------------

int Usage() {
  std::fprintf(
      stderr,
      "usage: mergepurge_deadlockcheck --root=DIR [options]\n"
      "\n"
      "Static lock-order verification against the lock-hierarchy manifest.\n"
      "\n"
      "  --root=DIR        repository root; DIR/src is scanned\n"
      "  --manifest=PATH   hierarchy manifest (default ROOT/tools/lock_hierarchy.json)\n"
      "  --ranks=PATH      rank header (default ROOT/src/util/lock_ranks.h)\n"
      "  --docs=PATH       docs file (default ROOT/docs/concurrency.md)\n"
      "  --skip-ranks      skip the rank-header agreement check\n"
      "  --skip-docs       skip the documentation check\n"
      "  --list-edges      print every observed nested acquisition\n"
      "\n"
      "Exit codes: 0 clean, 1 findings, 2 usage error.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root, manifest, ranks, docs;
  bool skip_ranks = false, skip_docs = false, list_edges = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--root")) root = *v;
    else if (auto v = value("--manifest")) manifest = *v;
    else if (auto v = value("--ranks")) ranks = *v;
    else if (auto v = value("--docs")) docs = *v;
    else if (arg == "--skip-ranks") skip_ranks = true;
    else if (arg == "--skip-docs") skip_docs = true;
    else if (arg == "--list-edges") list_edges = true;
    else if (arg == "--help" || arg == "-h") { Usage(); return 0; }
    else {
      std::fprintf(stderr, "deadlockcheck: unknown argument '%s'\n",
                   arg.c_str());
      return Usage();
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "deadlockcheck: --root is required\n");
    return Usage();
  }
  if (manifest.empty()) manifest = root + "/tools/lock_hierarchy.json";
  if (ranks.empty()) ranks = root + "/src/util/lock_ranks.h";
  if (docs.empty()) docs = root + "/docs/concurrency.md";

  Checker ck;
  ck.list_edges = list_edges;
  if (!ParseManifest(manifest, &ck.mf, &ck.findings)) return 2;

  // Scoped RAII types: the sync.h vocabulary plus the manifest's own.
  std::string scoped_pattern = "\\b(MutexLock|WriterLock|ReaderLock";
  for (const auto& [type, lock] : ck.mf.scoped_lock)
    scoped_pattern += "|" + type;
  scoped_pattern += ")\\s+(\\w+)\\s*\\(";
  const std::regex scoped_re(scoped_pattern);

  const fs::path src_dir = fs::path(root) / "src";
  std::error_code ec;
  if (!fs::is_directory(src_dir, ec)) {
    std::fprintf(stderr, "deadlockcheck: %s is not a directory\n",
                 src_dir.string().c_str());
    return 2;
  }
  // sync.h/.cc implement the lock vocabulary itself; lock_ranks.h is the
  // rank table. Scanning them would self-report the primitives.
  const std::vector<std::string> exempt = {"util/sync.h", "util/sync.cc",
                                           "util/lock_ranks.h"};
  std::vector<std::pair<std::string, std::string>> files;  // rel, normalized
  std::vector<std::string> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    const std::string rel =
        fs::relative(path, fs::path(root), ec).generic_string();
    bool skip = false;
    for (const std::string& e : exempt) {
      if (rel.size() >= e.size() &&
          rel.compare(rel.size() - e.size(), e.size(), e) == 0)
        skip = true;
    }
    if (skip) continue;
    auto text = ReadFileToString(path);
    if (!text) continue;
    CollectAllows(ck, rel, *text);
    files.emplace_back(rel, Normalize(*text));
  }

  for (const auto& [rel, text] : files)
    FileScanner(ck, rel, text, /*pass=*/1, scoped_re).Run();
  ResolvePendingMembers(ck);
  CheckSymbolCoverage(ck, manifest);
  for (const auto& [rel, text] : files)
    FileScanner(ck, rel, text, /*pass=*/2, scoped_re).Run();

  ComputeTransitiveAcquires(ck);
  CheckEvents(ck);
  CheckCycles(ck, manifest);
  if (!skip_ranks) CheckRanksHeader(ck, ranks);
  if (!skip_docs) CheckDocs(ck, docs);

  if (list_edges) {
    for (const auto& [edge, site] : ck.observed) {
      std::printf("%s -> %s  [%s]\n", edge.first.c_str(),
                  edge.second.c_str(), site.c_str());
    }
  }

  std::sort(ck.findings.begin(), ck.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.id, a.msg) <
                     std::tie(b.file, b.line, b.id, b.msg);
            });
  for (const Finding& f : ck.findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.id.c_str(),
                f.msg.c_str());
  }
  if (!ck.findings.empty()) {
    std::fprintf(stderr, "deadlockcheck: %zu finding(s)\n",
                 ck.findings.size());
    return 1;
  }
  std::fprintf(stderr,
               "deadlockcheck: OK (%zu locks, %zu functions, %zu observed "
               "edges)\n",
               ck.mf.locks.size(), ck.fns.size(), ck.observed.size());
  return 0;
}
