// mergepurge_loadgen — closed-loop load generator for mergepurge_serve.
//
// Spawns N client threads, each with its own connection, driving an
// interleaved mix of upsert batches and match probes against a running
// server. Records per-request latency and writes a RunReport
// (BENCH_service.json) with throughput and exact p50/p90/p99 latency
// alongside the service.client.* histograms.
//
//   mergepurge_loadgen --port=N [--host=127.0.0.1] [--threads=4]
//                      [--records=10000]    (total records to upsert)
//                      [--match-frac=0.5]   (fraction of requests that
//                                            are match probes)
//                      [--upsert-batch=8]   (records per upsert request)
//                      [--seed=42]
//                      [--progress-interval-ms=0]  (periodic progress
//                                            line on stderr; 0 = off)
//                      [--out=BENCH_service.json]
//
// Every response is validated (ok:true, upsert entity count == batch
// size); any failure makes the run exit 1. Exit 2 on usage errors.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "gen/generator.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/window.h"
#include "service/client.h"
#include "service/protocol.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace mergepurge;

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_loadgen --port=N [--host=ADDR] [--threads=N] "
    "[--records=N] [--match-frac=F] [--upsert-batch=N] [--seed=N] "
    "[--progress-interval-ms=N] [--out=FILE.json]";

constexpr const char* kKnownFlags[] = {
    "port", "host", "threads", "records", "match-frac", "upsert-batch",
    "seed", "progress-interval-ms", "out",
};

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_loadgen: %s\n%s\n", message.c_str(),
               kUsage);
  return kExitUsage;
}

struct WorkerResult {
  std::vector<double> request_us;  // Every request.
  std::vector<double> match_us;
  std::vector<double> upsert_us;
  uint64_t records_sent = 0;
  uint64_t retries = 0;  // Reconnect-and-resend attempts that were needed.
  uint64_t failures = 0;
  std::string first_error;

  void Fail(const std::string& message) {
    ++failures;
    if (first_error.empty()) first_error = message;
  }
};

// The reconnect-with-backoff loop itself lives in service/client.h
// (CallWithRetry — shared with the shard coordinator's connection
// pool); this wrapper only adds the per-worker retry accounting.
Result<JsonValue> WorkerCall(ServiceClient* client, const std::string& host,
                             uint16_t port, std::string_view request_line,
                             Rng* rng, WorkerResult* result) {
  return CallWithRetry(client, host, port, request_line, rng,
                       RetryOptions{}, [result] { ++result->retries; });
}

// The per-thread closed loop: upserts its slice of the dataset in batches,
// interleaving match probes against records it has already admitted.
void RunWorker(const std::string& host, uint16_t port, const Schema& schema,
               const Dataset& dataset, size_t begin, size_t end,
               double match_frac, size_t upsert_batch, Rng rng,
               WorkerResult* result) {
  // Client-side histograms are fed live (not merged at the end) so the
  // --progress-interval-ms reporter can rate over registry snapshots.
  static LatencyHistogram* const client_request_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceClientRequestUs);
  static LatencyHistogram* const client_match_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceClientMatchUs);
  static LatencyHistogram* const client_upsert_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceClientUpsertUs);

  // The first CallWithRetry connects lazily (and reconnects after any
  // transport error), so a server that is still starting up — or
  // restarting after a crash — costs retries, not failures.
  ServiceClient client;
  size_t next = begin;
  size_t sent_end = begin;  // Records in [begin, sent_end) were admitted.
  while (next < end) {
    const bool probe =
        sent_end > begin && rng.NextBernoulli(match_frac);
    std::string request_line;
    bool is_match = false;
    size_t batch_records = 0;
    if (probe) {
      is_match = true;
      const size_t pick =
          begin + static_cast<size_t>(rng.NextBounded(sent_end - begin));
      JsonValue doc = JsonValue::Object();
      doc.Set("op", JsonValue("match"));
      doc.Set("record", RecordToJson(schema, dataset.record(static_cast<TupleId>(pick))));
      request_line = doc.Dump(0) + "\n";
    } else {
      batch_records = std::min(upsert_batch, end - next);
      JsonValue records = JsonValue::Array();
      for (size_t i = next; i < next + batch_records; ++i) {
        records.Append(RecordToJson(schema, dataset.record(static_cast<TupleId>(i))));
      }
      JsonValue doc = JsonValue::Object();
      doc.Set("op", JsonValue("upsert"));
      doc.Set("records", std::move(records));
      request_line = doc.Dump(0) + "\n";
    }

    Timer timer;
    Result<JsonValue> response =
        WorkerCall(&client, host, port, request_line, &rng, result);
    const double micros = static_cast<double>(timer.ElapsedMicros());
    if (!response.ok()) {
      result->Fail(response.status().ToString());
      return;  // Retries exhausted; the server is genuinely gone.
    }
    const JsonValue* ok = response->Find("ok");
    if (ok == nullptr || !ok->bool_value()) {
      const JsonValue* error = response->Find("error");
      result->Fail("server error: " +
                   (error != nullptr ? error->Dump(0) : response->Dump(0)));
      continue;
    }
    result->request_us.push_back(micros);
    client_request_us->Record(micros);
    if (is_match) {
      result->match_us.push_back(micros);
      client_match_us->Record(micros);
    } else {
      const JsonValue* entities = response->Find("entities");
      if (entities == nullptr ||
          entities->elements().size() != batch_records) {
        result->Fail(StringPrintf(
            "upsert returned %zu entity ids for %zu records",
            entities == nullptr ? size_t{0} : entities->elements().size(),
            batch_records));
      }
      result->upsert_us.push_back(micros);
      client_upsert_us->Record(micros);
      result->records_sent += batch_records;
      next += batch_records;
      sent_end = next;
    }
  }
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1.0,
                       p * static_cast<double>(sorted.size())));
  return sorted[index];
}

JsonValue LatencySummary(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue(static_cast<uint64_t>(samples.size())));
  out.Set("p50_us", JsonValue(Percentile(samples, 0.50)));
  out.Set("p90_us", JsonValue(Percentile(samples, 0.90)));
  out.Set("p99_us", JsonValue(Percentile(samples, 0.99)));
  out.Set("max_us",
          JsonValue(samples.empty() ? 0.0 : samples.back()));
  out.Set("mean_us",
          JsonValue(samples.empty()
                        ? 0.0
                        : sum / static_cast<double>(samples.size())));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }

  if (!args.Has("port")) return UsageError("--port is required");
  const int64_t port = args.GetInt("port", 0);
  if (port < 1 || port > 65535) {
    return UsageError("--port must be in [1, 65535] (got " +
                      args.GetString("port", "") + ")");
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const int64_t threads = args.GetInt("threads", 4);
  if (threads < 1) return UsageError("--threads must be >= 1");
  const int64_t records = args.GetInt("records", 10000);
  if (records < 1) return UsageError("--records must be >= 1");
  const double match_frac = args.GetDouble("match-frac", 0.5);
  if (match_frac < 0.0 || match_frac >= 1.0) {
    return UsageError("--match-frac must be in [0, 1)");
  }
  const int64_t upsert_batch = args.GetInt("upsert-batch", 8);
  if (upsert_batch < 1) return UsageError("--upsert-batch must be >= 1");
  const uint64_t seed =
      static_cast<uint64_t>(args.GetInt("seed", 42));
  const int64_t progress_interval_ms =
      args.GetInt("progress-interval-ms", 0);
  if (progress_interval_ms < 0) {
    return UsageError("--progress-interval-ms must be >= 0");
  }
  const std::string out_path = args.GetString("out", "BENCH_service.json");

  // Generate the workload: originals + duplicates gives the match probes
  // realistic hit rates. The generator emits more than num_records total
  // (duplicates ride along), so truncate to exactly --records.
  GeneratorConfig gen_config;
  gen_config.num_records = static_cast<size_t>(records);
  gen_config.seed = seed;
  Result<GeneratedDatabase> generated =
      DatabaseGenerator(gen_config).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "mergepurge_loadgen: generator: %s\n",
                 generated.status().ToString().c_str());
    return kExitRuntime;
  }
  const Dataset& dataset = generated->dataset;
  const size_t total_records =
      std::min(dataset.size(), static_cast<size_t>(records));
  const Schema schema = employee::MakeSchema();

  const size_t num_threads =
      std::min(static_cast<size_t>(threads), total_records);
  std::vector<WorkerResult> results(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  Rng root_rng(seed ^ 0x10adULL);

  std::fprintf(stderr,
               "mergepurge_loadgen: %zu records, %zu threads, "
               "match-frac %.2f, upsert-batch %lld -> %s:%lld\n",
               total_records, num_threads, match_frac,
               static_cast<long long>(upsert_batch), host.c_str(),
               static_cast<long long>(port));

  Timer wall;
  for (size_t i = 0; i < num_threads; ++i) {
    const size_t begin = total_records * i / num_threads;
    const size_t end = total_records * (i + 1) / num_threads;
    workers.emplace_back(RunWorker, host, static_cast<uint16_t>(port),
                         std::cref(schema), std::cref(dataset), begin, end,
                         match_frac, static_cast<size_t>(upsert_batch),
                         root_rng.Fork(), &results[i]);
  }

  // Periodic progress line: snapshot the registry each tick, rate the
  // client-side histogram deltas over the window (obs/window.h).
  std::atomic<bool> workers_done{false};
  std::thread progress;
  if (progress_interval_ms > 0) {
    progress = std::thread([&workers_done, &wall, progress_interval_ms] {
      const double interval_seconds =
          static_cast<double>(progress_interval_ms) / 1000.0;
      SnapshotRing ring;
      ring.Push(wall.ElapsedSeconds(), MetricsRegistry::Global().Snapshot());
      while (!workers_done.load(std::memory_order_acquire)) {
        // Sleep in small slices so the reporter exits promptly when the
        // workers finish early.
        const auto tick_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(progress_interval_ms);
        while (!workers_done.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < tick_deadline) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (workers_done.load(std::memory_order_acquire)) break;
        const double now = wall.ElapsedSeconds();
        ring.Push(now, MetricsRegistry::Global().Snapshot());
        const SnapshotWindow window = ring.Over(interval_seconds * 1.5);
        if (!window.valid) continue;
        const auto it = window.delta.histograms.find(
            metric_names::kServiceClientRequestUs);
        if (it == window.delta.histograms.end()) continue;
        const HistogramSnapshot& requests = it->second;
        std::fprintf(
            stderr,
            "mergepurge_loadgen: t=%.1fs %.0f req/s, window p50 %.0fus "
            "p99 %.0fus, %llu retries\n",
            now,
            static_cast<double>(requests.count) / window.seconds,
            HistogramQuantile(requests, 0.50),
            HistogramQuantile(requests, 0.99),
            static_cast<unsigned long long>(window.delta.counter(
                metric_names::kServiceClientRetries)));
      }
    });
  }

  for (std::thread& t : workers) t.join();
  workers_done.store(true, std::memory_order_release);
  if (progress.joinable()) progress.join();
  const double wall_seconds =
      static_cast<double>(wall.ElapsedMicros()) / 1e6;

  // Merge per-thread samples and feed the client-side histograms so the
  // run report carries full distributions, not just the percentiles.
  std::vector<double> request_us;
  std::vector<double> match_us;
  std::vector<double> upsert_us;
  uint64_t records_sent = 0;
  uint64_t retries = 0;
  uint64_t failures = 0;
  std::string first_error;
  for (WorkerResult& r : results) {
    request_us.insert(request_us.end(), r.request_us.begin(),
                      r.request_us.end());
    match_us.insert(match_us.end(), r.match_us.begin(), r.match_us.end());
    upsert_us.insert(upsert_us.end(), r.upsert_us.begin(),
                     r.upsert_us.end());
    records_sent += r.records_sent;
    retries += r.retries;
    failures += r.failures;
    if (first_error.empty()) first_error = r.first_error;
  }
  // Retries and the client-side histograms were fed live by the workers
  // (CallWithRetry / RunWorker), so the registry already carries them.

  // A final stats round-trip: the server's view of what we admitted.
  JsonValue server_stats = JsonValue::Object();
  {
    ServiceClient client;
    if (client.Connect(host, static_cast<uint16_t>(port)).ok()) {
      Result<JsonValue> response =
          client.Call("{\"op\":\"stats\"}\n");
      if (response.ok() && response->Find("ok") != nullptr &&
          response->Find("ok")->bool_value()) {
        for (const char* key : {"records", "entities", "pairs"}) {
          if (const JsonValue* v = response->Find(key)) {
            server_stats.Set(key, *v);
          }
        }
        // When the server runs durably it reports wal/snapshot sequences
        // and its startup recovery time; carry them into the benchmark
        // report so BENCH_service.json records recovery cost.
        if (const JsonValue* durability = response->Find("durability")) {
          server_stats.Set("durability", *durability);
        }
      }
    }
  }

  const uint64_t total_requests =
      static_cast<uint64_t>(request_us.size());
  const double requests_per_second =
      wall_seconds > 0.0
          ? static_cast<double>(total_requests) / wall_seconds
          : 0.0;
  const double records_per_second =
      wall_seconds > 0.0
          ? static_cast<double>(records_sent) / wall_seconds
          : 0.0;

  RunReport report("mergepurge_loadgen");
  report.SetConfig("host", JsonValue(host));
  report.SetConfig("port", JsonValue(static_cast<uint64_t>(port)));
  report.SetConfig("threads",
                   JsonValue(static_cast<uint64_t>(num_threads)));
  report.SetConfig("records",
                   JsonValue(static_cast<uint64_t>(total_records)));
  report.SetConfig("match_frac", JsonValue(match_frac));
  report.SetConfig("upsert_batch",
                   JsonValue(static_cast<uint64_t>(upsert_batch)));
  report.SetConfig("seed", JsonValue(seed));
  report.SetDataset(total_records, employee::kNumFields);

  JsonValue summary = JsonValue::Object();
  summary.Set("requests", JsonValue(total_requests));
  summary.Set("match_requests",
              JsonValue(static_cast<uint64_t>(match_us.size())));
  summary.Set("upsert_requests",
              JsonValue(static_cast<uint64_t>(upsert_us.size())));
  summary.Set("records_sent", JsonValue(records_sent));
  summary.Set("retries", JsonValue(retries));
  summary.Set("failures", JsonValue(failures));
  summary.Set("wall_seconds", JsonValue(wall_seconds));
  summary.Set("requests_per_second", JsonValue(requests_per_second));
  summary.Set("records_per_second", JsonValue(records_per_second));
  summary.Set("latency_request", LatencySummary(request_us));
  summary.Set("latency_match", LatencySummary(match_us));
  summary.Set("latency_upsert", LatencySummary(upsert_us));
  summary.Set("server", std::move(server_stats));
  report.SetConfig("summary", std::move(summary));

  const bool ok = failures == 0 && records_sent == total_records;
  report.SetOutcome(ok, ok ? "" : first_error);
  report.CaptureMetrics();
  Status write = report.WriteToFile(out_path);
  if (!write.ok()) {
    std::fprintf(stderr, "mergepurge_loadgen: %s\n",
                 write.ToString().c_str());
    return kExitRuntime;
  }

  std::fprintf(stderr,
               "mergepurge_loadgen: %llu requests in %.2fs "
               "(%.0f req/s, %.0f rec/s), p50 %.0fus p99 %.0fus, "
               "%llu retries, %llu failures -> %s\n",
               static_cast<unsigned long long>(total_requests),
               wall_seconds, requests_per_second, records_per_second,
               Percentile(request_us, 0.50), Percentile(request_us, 0.99),
               static_cast<unsigned long long>(retries),
               static_cast<unsigned long long>(failures), out_path.c_str());
  if (!ok && !first_error.empty()) {
    std::fprintf(stderr, "mergepurge_loadgen: first error: %s\n",
                 first_error.c_str());
  }
  return ok ? 0 : kExitRuntime;
}
