// mergepurge_rulecheck — static analyzer for rule-language theories.
//
// Vets an equational theory before it ever touches data: symmetry,
// blank-record closure safety, unsatisfiable/tautological thresholds,
// duplicate and subsumed rules, merge-directive problems. Every lint id is
// cataloged in docs/rule_lints.md.
//
//   mergepurge_rulecheck --rules=theory.rules | --builtin-employee
//                        [--format=text|json]   (default text)
//                        [--werror]             (warnings fail the run)
//                        [--out=FILE]           (default stdout)
//                        [--passes=SPEC|none]   (window-coverage input)
//
// --passes describes the sort passes the theory will run under, for the
// window-coverage lint: semicolon-separated passes, each
// "[name:]field+field+...", e.g.
//   --passes="last-name:last_name+first_name+ssn;address:address+city"
// With --builtin-employee the paper's standard three keys are implied;
// pass --passes=none to skip the lint entirely.
//
// Exit codes: 0 theory is clean (no errors; no warnings under --werror),
// 1 findings at a failing severity, 2 usage error. Diagnostics render to
// stdout (or --out); the pass/fail verdict goes to stderr, so scripted
// callers can capture the report and still read the outcome.
//
// Findings can be silenced at the source line with
//   # rulecheck: allow(<lint-id>[, <lint-id>...])
// on the line(s) directly above the offending rule or directive.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/experiment.h"
#include "keys/standard_keys.h"
#include "record/schema.h"
#include "rules/analysis/analyzer.h"
#include "rules/employee_rules_text.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_rulecheck (--rules=FILE | --builtin-employee) "
    "[--format=text|json] [--werror] [--out=FILE] [--passes=SPEC|none]";

constexpr const char* kKnownFlags[] = {
    "rules", "builtin-employee", "format", "werror", "out", "passes",
};

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_rulecheck: %s\n%s\n", message.c_str(),
               kUsage);
  return kExitUsage;
}

// "[name:]f1+f2[;...]" -> PassKeyFields list; false on a malformed spec.
bool ParsePasses(const std::string& spec,
                 std::vector<PassKeyFields>* passes) {
  int counter = 0;
  for (std::string_view pass_text : SplitView(spec, ';')) {
    PassKeyFields pass;
    size_t colon = pass_text.find(':');
    if (colon != std::string_view::npos) {
      pass.name = std::string(pass_text.substr(0, colon));
      pass_text.remove_prefix(colon + 1);
    } else {
      pass.name = StringPrintf("pass-%d", ++counter);
    }
    for (std::string_view field : SplitView(pass_text, '+')) {
      if (!field.empty()) pass.fields.emplace_back(field);
    }
    if (pass.fields.empty()) return false;
    passes->push_back(std::move(pass));
  }
  return !passes->empty();
}

// The paper's standard three keys, reduced to field names for the
// window-coverage lint (the --builtin-employee default).
std::vector<PassKeyFields> EmployeeStandardPasses() {
  const Schema schema = employee::MakeSchema();
  std::vector<PassKeyFields> passes;
  for (const KeySpec& key : StandardThreeKeys()) {
    PassKeyFields pass;
    pass.name = key.name;
    for (const KeyComponent& component : key.components) {
      const std::string& field = schema.field_name(component.field);
      if (std::find(pass.fields.begin(), pass.fields.end(), field) ==
          pass.fields.end()) {
        pass.fields.push_back(field);
      }
    }
    passes.push_back(std::move(pass));
  }
  return passes;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }
  if (args.Has("rules") == args.GetBool("builtin-employee", false)) {
    return UsageError(
        "exactly one of --rules and --builtin-employee is required");
  }
  const std::string format = args.GetString("format", "text");
  if (format != "text" && format != "json") {
    return UsageError("bad --format '" + format +
                      "' (expected text or json)");
  }

  std::string source_name = "<builtin-employee>";
  std::string source(EmployeeRulesText());
  if (args.Has("rules")) {
    source_name = args.GetString("rules", "");
    std::ifstream in(source_name, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "mergepurge_rulecheck: cannot open %s\n",
                   source_name.c_str());
      return kExitFindings;
    }
    std::ostringstream text;
    text << in.rdbuf();
    source = text.str();
  }

  AnalyzerOptions analyzer_options;
  const std::string passes_spec = args.GetString("passes", "");
  if (passes_spec == "none") {
    // window-coverage explicitly disabled.
  } else if (!passes_spec.empty()) {
    if (!ParsePasses(passes_spec, &analyzer_options.passes)) {
      return UsageError("bad --passes '" + passes_spec +
                        "' (expected \"[name:]field+field[;...]\" or none)");
    }
  } else if (args.GetBool("builtin-employee", false)) {
    analyzer_options.passes = EmployeeStandardPasses();
  }

  AnalysisReport report =
      AnalyzeRuleSource(source, std::move(analyzer_options));
  std::string rendered = format == "json"
                             ? report.ToJson(source_name).Dump(2) + "\n"
                             : report.ToText(source_name);

  if (args.Has("out")) {
    const std::string out_path = args.GetString("out", "");
    std::ofstream out(out_path, std::ios::trunc | std::ios::binary);
    out << rendered;
    if (!out.good()) {
      std::fprintf(stderr, "mergepurge_rulecheck: cannot write %s\n",
                   out_path.c_str());
      return kExitFindings;
    }
  } else {
    std::fputs(rendered.c_str(), stdout);
  }

  const bool failed =
      report.HasErrors() ||
      (args.GetBool("werror", false) &&
       report.CountAtSeverity(LintSeverity::kWarning) > 0);
  std::fprintf(stderr, "mergepurge_rulecheck: %s: %s\n", source_name.c_str(),
               failed ? "FAIL" : "OK");
  return failed ? kExitFindings : 0;
}
