// mergepurge_serve — the online merge/purge service (docs/service.md).
//
// Keeps the multi-pass incremental engine resident and answers match /
// upsert / ping / stats requests over newline-delimited JSON on TCP.
//
//   mergepurge_serve [--port=7733]            (0 = ephemeral port)
//                    [--port-file=PATH]       (write the bound port; lets
//                                              scripts use --port=0)
//                    [--window=10]
//                    [--keys=last-name,first-name,address]
//                    [--rules=theory.rules]   (default: built-in employee
//                                              theory)
//                    [--workers=8]            (connection workers)
//                    [--max-conn=64]          (connection cap)
//                    [--max-line-bytes=1048576]
//                    [--idle-timeout-ms=30000]
//                    [--batch-records=256]    (upsert batcher fill limit)
//                    [--batch-delay-ms=2.0]   (upsert batcher deadline)
//                    [--slow-request-us=0]    (log requests slower than
//                                              this; 0 = off)
//                    [--data-dir=DIR]         (crash durability: WAL +
//                                              snapshots + recovery on
//                                              start; docs/durability.md)
//                    [--fsync=group]          (always | group | none)
//                    [--snapshot-batches=256] (snapshot cadence, batches)
//                    [--snapshot-interval-ms=1000]
//                    [--keep-wal]             (never truncate the WAL;
//                                              recovery audit / CI diff)
//                    [--instance-label=NAME]  (stamped into health/stats
//                                              responses and the report;
//                                              names shards in a
//                                              coordinator deployment)
//                    [--metrics-out=FILE.json] [--trace-out=FILE.json]
//                    [--log-level=LEVEL]
//                    [--rules-check]          (lint the theory at startup;
//                                              lint errors refuse to serve
//                                              — see docs/rule_lints.md)
//
// SIGINT/SIGTERM trigger a graceful drain: stop accepting, finish
// in-flight requests, flush the upsert batcher, then write the
// --metrics-out run report and --trace-out trace before exiting 0.
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 usage error.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "eval/experiment.h"
#include "keys/standard_keys.h"
#include "obs/drain.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "rules/analysis/analyzer.h"
#include "rules/employee_rules_text.h"
#include "rules/employee_theory.h"
#include "rules/rule_program.h"
#include "service/match_service.h"
#include "service/server.h"
#include "util/logging.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_serve [--port=N] [--port-file=PATH] [--window=N] "
    "[--keys=...] [--rules=FILE] [--workers=N] [--max-conn=N] "
    "[--max-line-bytes=N] [--idle-timeout-ms=N] [--batch-records=N] "
    "[--batch-delay-ms=F] [--slow-request-us=N] [--data-dir=DIR] "
    "[--fsync=always|group|none] "
    "[--snapshot-batches=N] [--snapshot-interval-ms=N] [--keep-wal] "
    "[--instance-label=NAME] [--metrics-out=FILE.json] "
    "[--trace-out=FILE.json] [--log-level=LEVEL] [--rules-check]";

constexpr const char* kKnownFlags[] = {
    "port",           "port-file",     "window",
    "keys",           "rules",         "workers",
    "max-conn",       "max-line-bytes", "idle-timeout-ms",
    "batch-records",  "batch-delay-ms", "slow-request-us",
    "metrics-out",
    "trace-out",      "log-level",     "rules-check",
    "data-dir",       "fsync",         "snapshot-batches",
    "snapshot-interval-ms", "keep-wal", "instance-label",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "mergepurge_serve: %s\n", message.c_str());
  return kExitRuntime;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_serve: %s\n%s\n", message.c_str(),
               kUsage);
  return kExitUsage;
}

Result<std::vector<KeySpec>> ResolveKeys(const std::string& names) {
  std::vector<KeySpec> keys;
  for (std::string_view name : SplitView(names, ',')) {
    if (name == "last-name") {
      keys.push_back(LastNameKey());
    } else if (name == "first-name") {
      keys.push_back(FirstNameKey());
    } else if (name == "address") {
      keys.push_back(AddressKey());
    } else if (name == "soundex-last-name") {
      keys.push_back(PhoneticLastNameKey());
    } else {
      return Status::InvalidArgument(
          "unknown key '" + std::string(name) +
          "' (expected last-name, first-name, address, soundex-last-name)");
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument("no keys given");
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  // Before any thread exists, so every thread inherits the blocked mask.
  SignalDrain::Global().Install();
  SignalDrain::Global().set_exit_after_callbacks(false);

  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }

  if (args.Has("log-level")) {
    std::string level_name = args.GetString("log-level", "");
    std::optional<LogLevel> level = ParseLogLevel(level_name);
    if (!level) {
      return UsageError("bad --log-level '" + level_name +
                        "' (expected debug, info, warning, or error)");
    }
    SetLogLevel(*level);
  }
  if (args.Has("trace-out")) TraceRecorder::Global().Enable();

  // --- Engine configuration. ---
  MatchServiceOptions service_options;
  Result<std::vector<KeySpec>> keys = ResolveKeys(
      args.GetString("keys", "last-name,first-name,address"));
  if (!keys.ok()) return UsageError(keys.status().message());
  service_options.engine.keys = std::move(*keys);
  const int64_t window = args.GetInt("window", 10);
  if (window < 2) {
    return UsageError("--window must be >= 2 (got " +
                      args.GetString("window", "") + ")");
  }
  service_options.engine.window = static_cast<size_t>(window);
  // Remembered for the hello handshake: a coordinator with a different
  // --keys/--window gets a config_mismatch instead of silent mis-routing.
  const std::string topology_keys = CanonicalKeysSpec(
      args.GetString("keys", "last-name,first-name,address"));
  const uint64_t topology_window = static_cast<uint64_t>(window);
  const int64_t batch_records = args.GetInt("batch-records", 256);
  if (batch_records < 1) {
    return UsageError("--batch-records must be >= 1 (got " +
                      args.GetString("batch-records", "") + ")");
  }
  service_options.batcher.max_batch_records =
      static_cast<size_t>(batch_records);
  const double batch_delay_ms = args.GetDouble("batch-delay-ms", 2.0);
  if (batch_delay_ms < 0.0) {
    return UsageError("--batch-delay-ms must be >= 0 (got " +
                      args.GetString("batch-delay-ms", "") + ")");
  }
  service_options.batcher.max_delay_ms = batch_delay_ms;

  // --- Durability configuration. ---
  if (args.Has("data-dir")) {
    service_options.durability.data_dir = args.GetString("data-dir", "");
    if (service_options.durability.data_dir.empty()) {
      return UsageError("--data-dir needs a directory path");
    }
    Result<FsyncPolicy> fsync =
        ParseFsyncPolicy(args.GetString("fsync", "group"));
    if (!fsync.ok()) return UsageError(fsync.status().message());
    service_options.durability.fsync = *fsync;
    const int64_t snapshot_batches = args.GetInt("snapshot-batches", 256);
    if (snapshot_batches < 1) {
      return UsageError("--snapshot-batches must be >= 1 (got " +
                        args.GetString("snapshot-batches", "") + ")");
    }
    service_options.durability.snapshot_every_batches =
        static_cast<uint64_t>(snapshot_batches);
    const int64_t snapshot_interval =
        args.GetInt("snapshot-interval-ms", 1000);
    if (snapshot_interval < 1) {
      return UsageError("--snapshot-interval-ms must be >= 1 (got " +
                        args.GetString("snapshot-interval-ms", "") + ")");
    }
    service_options.durability.snapshot_interval_ms =
        static_cast<int>(snapshot_interval);
    service_options.durability.keep_wal = args.GetBool("keep-wal", false);
  } else if (args.Has("fsync") || args.Has("snapshot-batches") ||
             args.Has("snapshot-interval-ms") || args.Has("keep-wal")) {
    return UsageError(
        "--fsync/--snapshot-batches/--snapshot-interval-ms/--keep-wal "
        "require --data-dir");
  }

  // --- Server configuration. ---
  ServerOptions server_options;
  const int64_t port = args.GetInt("port", 7733);
  if (port < 0 || port > 65535) {
    return UsageError("--port must be in [0, 65535] (got " +
                      args.GetString("port", "") + ")");
  }
  server_options.port = static_cast<uint16_t>(port);
  const int64_t workers = args.GetInt("workers", 8);
  if (workers < 1) {
    return UsageError("--workers must be >= 1 (got " +
                      args.GetString("workers", "") + ")");
  }
  server_options.num_workers = static_cast<size_t>(workers);
  const int64_t max_conn = args.GetInt("max-conn", 64);
  if (max_conn < 1) {
    return UsageError("--max-conn must be >= 1 (got " +
                      args.GetString("max-conn", "") + ")");
  }
  server_options.max_connections = static_cast<size_t>(max_conn);
  const int64_t max_line = args.GetInt("max-line-bytes", 1 << 20);
  if (max_line < 64) {
    return UsageError("--max-line-bytes must be >= 64 (got " +
                      args.GetString("max-line-bytes", "") + ")");
  }
  server_options.max_line_bytes = static_cast<size_t>(max_line);
  const int64_t idle_timeout = args.GetInt("idle-timeout-ms", 30000);
  if (idle_timeout < 0) {
    return UsageError("--idle-timeout-ms must be >= 0 (got " +
                      args.GetString("idle-timeout-ms", "") + ")");
  }
  server_options.idle_timeout_ms = static_cast<int>(idle_timeout);
  const int64_t slow_request_us = args.GetInt("slow-request-us", 0);
  if (slow_request_us < 0) {
    return UsageError("--slow-request-us must be >= 0 (got " +
                      args.GetString("slow-request-us", "") + ")");
  }
  server_options.slow_request_us = static_cast<int>(slow_request_us);
  server_options.instance_label = args.GetString("instance-label", "");
  server_options.topology_keys = topology_keys;
  server_options.topology_window = topology_window;

  // --- Optional theory preflight: a service with a linted-broken theory
  // (e.g. one that merges all-blank records) must refuse to start. ---
  if (args.GetBool("rules-check", false)) {
    std::string rules_name = "<builtin-employee>";
    std::string rules_source(EmployeeRulesText());
    if (args.Has("rules")) {
      rules_name = args.GetString("rules", "");
      std::ifstream rules_in(rules_name, std::ios::binary);
      if (!rules_in) return Fail("cannot open rules file: " + rules_name);
      std::ostringstream rules_text;
      rules_text << rules_in.rdbuf();
      rules_source = rules_text.str();
    }
    AnalysisReport analysis = AnalyzeRuleSource(rules_source);
    std::fputs(analysis.ToText(rules_name).c_str(), stderr);
    if (analysis.HasErrors()) {
      return Fail("--rules-check: theory has lint errors, refusing to serve");
    }
  }

  // --- Theory factory: compile once, instantiate per lease. ---
  MatchService::TheoryFactory theory_factory;
  if (args.Has("rules")) {
    std::string path = args.GetString("rules", "");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Fail("cannot open rules file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    Result<RuleProgram> program =
        RuleProgram::Compile(text.str(), employee::MakeSchema());
    if (!program.ok()) {
      return Fail(path + ": " + program.status().ToString());
    }
    std::fprintf(stderr, "compiled %zu rules from %s\n",
                 program->num_rules(), path.c_str());
    auto shared = std::make_shared<RuleProgram>(std::move(*program));
    theory_factory = [shared]() -> std::unique_ptr<EquationalTheory> {
      return std::make_unique<RuleProgram>(*shared);
    };
  } else {
    theory_factory = []() -> std::unique_ptr<EquationalTheory> {
      return std::make_unique<EmployeeTheory>();
    };
  }

  // The service constructs in the recovering state (durability on) and
  // replays on a background thread; the server starts listening right
  // away so health checks can observe "recovering" while match/upsert
  // are refused with a retryable error.
  MatchService service(std::move(service_options),
                       std::move(theory_factory));
  Server server(server_options, &service);
  SignalDrain::Global().OnSignal(
      [&server](int) { server.RequestDrain(); });

  Result<uint16_t> bound = server.Start();
  if (!bound.ok()) return Fail(bound.status().ToString());
  std::fprintf(stderr, "mergepurge_serve: listening on %s:%u\n",
               server_options.bind_address.c_str(), *bound);
  if (args.Has("port-file")) {
    std::string port_path = args.GetString("port-file", "");
    std::ofstream port_file(port_path, std::ios::trunc);
    port_file << *bound << "\n";
    if (!port_file.good()) {
      server.RequestDrain();
      server.Join();
      return Fail("cannot write port file: " + port_path);
    }
  }

  Status recovery_status = service.WaitForRecovery();
  if (!recovery_status.ok()) {
    server.RequestDrain();
    server.Join();
    return Fail("recovery failed: " + recovery_status.ToString());
  }
  const MatchService::DurabilityInfo recovered = service.GetDurability();
  if (recovered.enabled) {
    std::fprintf(
        stderr,
        "mergepurge_serve: recovered to seq %llu (snapshot seq %llu, "
        "%llu batches / %llu records replayed, %llu torn bytes cut, "
        "%.1f ms)\n",
        static_cast<unsigned long long>(recovered.recovery.last_seq),
        static_cast<unsigned long long>(recovered.recovery.snapshot_seq),
        static_cast<unsigned long long>(
            recovered.recovery.batches_replayed),
        static_cast<unsigned long long>(
            recovered.recovery.records_replayed),
        static_cast<unsigned long long>(
            recovered.recovery.truncated_bytes),
        recovered.recovery.recovery_ms);
  }

  // Blocks until a drain signal (or RequestDrain) stops the server.
  server.Join();

  MatchService::Stats stats = service.GetStats();
  if (args.Has("metrics-out")) {
    RunReport report("mergepurge_serve");
    report.SetConfig("port", JsonValue(static_cast<uint64_t>(*bound)));
    report.SetConfig(
        "keys", JsonValue(args.GetString(
                    "keys", "last-name,first-name,address")));
    report.SetConfig("window",
                     JsonValue(static_cast<uint64_t>(window)));
    report.SetConfig("workers",
                     JsonValue(static_cast<uint64_t>(workers)));
    report.SetConfig("batch_records",
                     JsonValue(static_cast<uint64_t>(batch_records)));
    report.SetConfig("batch_delay_ms", JsonValue(batch_delay_ms));
    if (args.Has("instance-label")) {
      report.SetConfig("instance_label",
                       JsonValue(args.GetString("instance-label", "")));
    }
    report.SetDataset(stats.records, employee::kNumFields);
    JsonValue service_json = JsonValue::Object();
    service_json.Set("records", JsonValue(stats.records));
    service_json.Set("entities", JsonValue(stats.entities));
    service_json.Set("pairs", JsonValue(stats.pairs));
    service_json.Set("batches", JsonValue(service.batches_committed()));
    service_json.Set("connections",
                     JsonValue(server.connections_accepted()));
    report.SetConfig("service", std::move(service_json));
    if (recovered.enabled) {
      const MatchService::DurabilityInfo final_info =
          service.GetDurability();
      JsonValue durability_json = JsonValue::Object();
      durability_json.Set("data_dir",
                          JsonValue(args.GetString("data-dir", "")));
      durability_json.Set("fsync",
                          JsonValue(args.GetString("fsync", "group")));
      durability_json.Set("applied_seq",
                          JsonValue(final_info.applied_seq));
      durability_json.Set("snapshot_seq",
                          JsonValue(final_info.snapshot_seq));
      JsonValue recovery_json = JsonValue::Object();
      recovery_json.Set("snapshot_loaded",
                        JsonValue(recovered.recovery.snapshot_loaded));
      recovery_json.Set("snapshot_seq",
                        JsonValue(recovered.recovery.snapshot_seq));
      recovery_json.Set("snapshot_records",
                        JsonValue(recovered.recovery.snapshot_records));
      recovery_json.Set("batches_replayed",
                        JsonValue(recovered.recovery.batches_replayed));
      recovery_json.Set("records_replayed",
                        JsonValue(recovered.recovery.records_replayed));
      recovery_json.Set("truncated_bytes",
                        JsonValue(recovered.recovery.truncated_bytes));
      recovery_json.Set("recovery_ms",
                        JsonValue(recovered.recovery.recovery_ms));
      durability_json.Set("recovery", std::move(recovery_json));
      report.SetConfig("durability", std::move(durability_json));
    }
    report.SetOutcome(true);
    report.CaptureMetrics();
    std::string metrics_path = args.GetString("metrics-out", "");
    Status write = report.WriteToFile(metrics_path);
    if (!write.ok()) return Fail(write.ToString());
    std::fprintf(stderr, "wrote run report to %s\n", metrics_path.c_str());
  }
  if (args.Has("trace-out")) {
    std::string trace_path = args.GetString("trace-out", "");
    Status write = TraceRecorder::Global().ExportChromeJson(trace_path);
    if (!write.ok()) return Fail(write.ToString());
    std::fprintf(stderr, "wrote %zu trace spans to %s\n",
                 TraceRecorder::Global().span_count(), trace_path.c_str());
  }
  std::fprintf(stderr,
               "mergepurge_serve: drained (%llu records, %llu entities, "
               "%llu pairs)\n",
               static_cast<unsigned long long>(stats.records),
               static_cast<unsigned long long>(stats.entities),
               static_cast<unsigned long long>(stats.pairs));
  return 0;
}
