// mergepurge_top — live console for a running mergepurge_serve.
//
// Polls {"op":"stats"} (and {"op":"health"} for the lifecycle/WAL view),
// computes deltas between successive polls, and renders a one-screen
// summary: request rates, latency quantiles, commit-pipeline stage
// attribution, resident engine sizes, and durability state. The server
// feeds its own 10-second snapshot ring on every stats request, so a
// steadily polling top is also what makes the server-side "window"
// section meaningful.
//
//   mergepurge_top --port=N [--host=127.0.0.1]
//                  [--interval-ms=1000]  (poll cadence)
//                  [--count=0]           (stop after N polls; 0 = forever)
//                  [--json]              (emit each raw stats response as
//                                         one JSON line on stdout instead
//                                         of the screen view; scripts and
//                                         the CI round-trip use this)
//
// Exit codes: 0 clean (count reached or SIGINT-initiated drain), 1 when
// the server cannot be reached or answers with an error, 2 usage error.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "eval/experiment.h"
#include "obs/drain.h"
#include "obs/json.h"
#include "obs/metric_names.h"
#include "service/client.h"
#include "util/timer.h"

using namespace mergepurge;

namespace {

constexpr int kExitRuntime = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_top --port=N [--host=ADDR] [--interval-ms=N] "
    "[--count=N] [--json]";

constexpr const char* kKnownFlags[] = {
    "port", "host", "interval-ms", "count", "json",
};

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_top: %s\n%s\n", message.c_str(), kUsage);
  return kExitUsage;
}

// Dotted-path lookup into a stats document ("window/histograms/...").
const JsonValue* FindPath(const JsonValue& root,
                          std::initializer_list<const char*> path) {
  const JsonValue* node = &root;
  for (const char* key : path) {
    if (node == nullptr) return nullptr;
    node = node->Find(key);
  }
  return node;
}

double NumberAt(const JsonValue& root,
                std::initializer_list<const char*> path,
                double fallback = 0.0) {
  const JsonValue* node = FindPath(root, path);
  return node != nullptr && node->is_number() ? node->double_value()
                                              : fallback;
}

uint64_t CounterAt(const JsonValue& root, const char* name) {
  const JsonValue* node = FindPath(root, {"counters", name});
  return node != nullptr && node->is_number()
             ? static_cast<uint64_t>(node->int_value())
             : 0;
}

std::string StringAt(const JsonValue& root, const char* key,
                     const std::string& fallback) {
  const JsonValue* node = root.Find(key);
  return node != nullptr && node->is_string() ? node->string_value()
                                              : fallback;
}

// One histogram-summary row: p50/p90/p99 from the doc's precomputed
// summaries, preferring the windowed section when it is valid.
struct LatencyRow {
  bool present = false;
  uint64_t count = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

LatencyRow RowFor(const JsonValue& stats, const char* name) {
  LatencyRow row;
  const JsonValue* summary =
      FindPath(stats, {"window", "histograms", name});
  if (summary == nullptr ||
      NumberAt(stats, {"window", "seconds"}, 0.0) <= 0.0) {
    summary = FindPath(stats, {"histograms", name});
  }
  if (summary == nullptr) return row;
  row.present = true;
  row.count = static_cast<uint64_t>(NumberAt(*summary, {"count"}));
  row.p50 = NumberAt(*summary, {"p50"});
  row.p90 = NumberAt(*summary, {"p90"});
  row.p99 = NumberAt(*summary, {"p99"});
  return row;
}

void PrintRow(const char* label, const LatencyRow& row) {
  if (!row.present) return;
  std::printf("  %-22s %10llu  %8.0f %8.0f %8.0f\n", label,
              static_cast<unsigned long long>(row.count), row.p50, row.p90,
              row.p99);
}

// Rates computed client-side from two successive polls, used when the
// server's own window section is not (yet) valid.
struct PollDelta {
  bool valid = false;
  double seconds = 0.0;
  uint64_t requests = 0;
  uint64_t records = 0;
};

void RenderScreen(const JsonValue& stats, const std::string& endpoint,
                  const PollDelta& delta) {
  // ANSI home + clear-to-end keeps the view flicker-free on a terminal
  // and degrades to plain text when piped.
  std::printf("\x1b[H\x1b[J");
  std::printf("mergepurge_top — %s   state: %s   up %.1fs\n",
              endpoint.c_str(), StringAt(stats, "state", "?").c_str(),
              NumberAt(stats, {"uptime_seconds"}));

  const double records = NumberAt(stats, {"records"});
  const double entities = NumberAt(stats, {"entities"});
  const double pairs = NumberAt(stats, {"pairs"});
  std::printf("resident: %.0f records | %.0f entities | %.0f pairs\n",
              records, entities, pairs);

  const double window_seconds = NumberAt(stats, {"window", "seconds"});
  if (window_seconds > 0.0) {
    std::printf("rates (%.1fs window): %.0f req/s | %.0f rec/s\n",
                window_seconds,
                NumberAt(stats, {"window", "requests_per_sec"}),
                NumberAt(stats, {"window", "records_per_sec"}));
  } else if (delta.valid && delta.seconds > 0.0) {
    std::printf("rates (%.1fs poll delta): %.0f req/s | %.0f rec/s\n",
                delta.seconds,
                static_cast<double>(delta.requests) / delta.seconds,
                static_cast<double>(delta.records) / delta.seconds);
  } else {
    std::printf("rates: warming up (need two polls)\n");
  }

  std::printf("totals: %llu requests | %llu upserts | %llu matches | "
              "%llu batches | %llu errors\n",
              static_cast<unsigned long long>(
                  CounterAt(stats, metric_names::kServiceRequests)),
              static_cast<unsigned long long>(
                  CounterAt(stats, metric_names::kServiceUpsertRequests)),
              static_cast<unsigned long long>(
                  CounterAt(stats, metric_names::kServiceMatchRequests)),
              static_cast<unsigned long long>(
                  CounterAt(stats, metric_names::kServiceBatches)),
              static_cast<unsigned long long>(
                  CounterAt(stats, metric_names::kServiceErrors)));

  std::printf("\n  %-22s %10s  %8s %8s %8s\n", "latency (us)", "count",
              "p50", "p90", "p99");
  PrintRow("request", RowFor(stats, metric_names::kServiceRequestUs));
  PrintRow("match", RowFor(stats, metric_names::kServiceMatchUs));
  PrintRow("upsert", RowFor(stats, metric_names::kServiceUpsertUs));

  std::printf("\n  %-22s %10s  %8s %8s %8s\n", "stage (us/batch)", "count",
              "p50", "p90", "p99");
  PrintRow("queue_wait",
           RowFor(stats, metric_names::kServiceStageQueueWaitUs));
  PrintRow("wal_append",
           RowFor(stats, metric_names::kServiceStageWalAppendUs));
  PrintRow("wal_fsync",
           RowFor(stats, metric_names::kServiceStageWalFsyncUs));
  PrintRow("apply", RowFor(stats, metric_names::kServiceStageApplyUs));
  PrintRow("label_rebuild",
           RowFor(stats, metric_names::kServiceStageLabelRebuildUs));
  PrintRow("ack", RowFor(stats, metric_names::kServiceStageAckUs));

  if (const JsonValue* durability = stats.Find("durability")) {
    std::printf("\nwal: seq %.0f | snapshot seq %.0f | open segment %.0fB "
                "| snapshot age %.0fms\n",
                NumberAt(*durability, {"wal_seq"}),
                NumberAt(*durability, {"snapshot_seq"}),
                NumberAt(stats, {"gauges",
                                 metric_names::kServiceWalOpenSegmentBytes}),
                NumberAt(stats,
                         {"gauges", metric_names::kServiceSnapshotAgeMs},
                         -1.0));
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }

  if (!args.Has("port")) return UsageError("--port is required");
  const int64_t port = args.GetInt("port", 0);
  if (port < 1 || port > 65535) {
    return UsageError("--port must be in [1, 65535] (got " +
                      args.GetString("port", "") + ")");
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  const int64_t interval_ms = args.GetInt("interval-ms", 1000);
  if (interval_ms < 1) return UsageError("--interval-ms must be >= 1");
  const int64_t count = args.GetInt("count", 0);
  if (count < 0) return UsageError("--count must be >= 0");
  const bool json = args.GetBool("json", false);
  const std::string endpoint =
      host + ":" + std::to_string(static_cast<unsigned>(port));

  SignalDrain::Global().Install();
  SignalDrain::Global().set_exit_after_callbacks(false);

  ServiceClient client;
  Status connected = client.Connect(host, static_cast<uint16_t>(port));
  if (!connected.ok()) {
    std::fprintf(stderr, "mergepurge_top: %s\n",
                 connected.ToString().c_str());
    return kExitRuntime;
  }

  Timer wall;
  double last_poll_seconds = 0.0;
  uint64_t last_requests = 0;
  uint64_t last_records = 0;
  bool have_last = false;
  for (int64_t polls = 0; count == 0 || polls < count; ++polls) {
    if (SignalDrain::Global().triggered()) break;
    if (polls > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (SignalDrain::Global().triggered()) break;
    }
    Result<JsonValue> response = client.Call("{\"op\":\"stats\"}\n");
    if (!response.ok()) {
      std::fprintf(stderr, "mergepurge_top: %s\n",
                   response.status().ToString().c_str());
      return kExitRuntime;
    }
    const JsonValue* ok = response->Find("ok");
    if (ok == nullptr || !ok->bool_value()) {
      std::fprintf(stderr, "mergepurge_top: server error: %s\n",
                   response->Dump(0).c_str());
      return kExitRuntime;
    }

    if (json) {
      // One compact document per poll; downstream tooling parses each
      // line independently (the CI round-trip validates the first).
      std::printf("%s\n", response->Dump(0).c_str());
      std::fflush(stdout);
      continue;
    }

    const double now = wall.ElapsedSeconds();
    const uint64_t requests =
        CounterAt(*response, metric_names::kServiceRequests);
    const uint64_t records =
        CounterAt(*response, metric_names::kServiceUpsertRecords);
    PollDelta delta;
    if (have_last) {
      delta.valid = true;
      delta.seconds = now - last_poll_seconds;
      delta.requests = requests > last_requests ? requests - last_requests
                                                : 0;
      delta.records =
          records > last_records ? records - last_records : 0;
    }
    last_poll_seconds = now;
    last_requests = requests;
    last_records = records;
    have_last = true;

    RenderScreen(*response, endpoint, delta);
  }
  return 0;
}
