// mergepurge_walcheck — offline recovery auditor (docs/durability.md).
//
// Rebuilds the service engine state from a --data-dir twice and demands
// the two copies agree byte for byte:
//
//   A. the RECOVERY path the server takes at startup: newest valid
//      snapshot, then replay of the WAL tail past the snapshot sequence;
//   B. the REFERENCE path: a serial replay of the ENTIRE WAL from
//      sequence 1 into a fresh engine, ignoring snapshots.
//
// Path B needs the full log, so the server must have run with
// --keep-wal (snapshot-triggered truncation otherwise deletes the
// prefix that B depends on). Any divergence — record bytes, pair sets,
// or closure labels — is a durability bug and exits 1 with the first
// difference found.
//
//   mergepurge_walcheck --data-dir=DIR
//                       [--window=10]
//                       [--keys=last-name,first-name,address]
//                       [--rules=theory.rules]
//
// The engine flags must match the ones the server ran with (the
// snapshot's config digest enforces this for A; B trusts the flags).
//
// Exit codes: 0 states identical, 1 mismatch or runtime failure,
// 2 usage error.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental.h"
#include "eval/experiment.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "rules/rule_program.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;

constexpr const char* kUsage =
    "usage: mergepurge_walcheck --data-dir=DIR [--window=N] [--keys=...] "
    "[--rules=FILE]";

constexpr const char* kKnownFlags[] = {
    "data-dir", "window", "keys", "rules",
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "mergepurge_walcheck: %s\n", message.c_str());
  return kExitMismatch;
}

int UsageError(const std::string& message) {
  std::fprintf(stderr, "mergepurge_walcheck: %s\n%s\n", message.c_str(),
               kUsage);
  return kExitUsage;
}

Result<std::vector<KeySpec>> ResolveKeys(const std::string& names) {
  std::vector<KeySpec> keys;
  for (std::string_view name : SplitView(names, ',')) {
    if (name == "last-name") {
      keys.push_back(LastNameKey());
    } else if (name == "first-name") {
      keys.push_back(FirstNameKey());
    } else if (name == "address") {
      keys.push_back(AddressKey());
    } else if (name == "soundex-last-name") {
      keys.push_back(PhoneticLastNameKey());
    } else {
      return Status::InvalidArgument(
          "unknown key '" + std::string(name) +
          "' (expected last-name, first-name, address, soundex-last-name)");
    }
  }
  if (keys.empty()) {
    return Status::InvalidArgument("no keys given");
  }
  return keys;
}

// Replays `batches` into `engine` in sequence order. Deterministically
// rejected batches (AddBatch returning an error) are skipped, exactly as
// the server's recovery skips them: a batch the engine rejects now was
// rejected identically at original commit time, so skipping reproduces
// the acknowledged state.
Status Replay(const std::vector<WalBatch>& batches, uint64_t after_seq,
              const EquationalTheory& theory,
              IncrementalMergePurge* engine) {
  for (const WalBatch& batch : batches) {
    if (batch.seq <= after_seq) continue;
    Dataset dataset(engine->size() > 0 ? engine->records().schema()
                                       : employee::MakeSchema());
    dataset.Reserve(batch.records.size());
    for (const Record& record : batch.records) dataset.Append(record);
    (void)engine->AddBatch(dataset, theory);
  }
  return Status::OK();
}

// First point of divergence between the two engines, or empty when they
// are identical. Compares record count, every field of every record,
// the sorted pair sets, and the canonical closure labels.
std::string FirstDifference(const IncrementalMergePurge& a,
                            const IncrementalMergePurge& b) {
  if (a.size() != b.size()) {
    return StringPrintf("record counts differ: recovery=%zu replay=%zu",
                        a.size(), b.size());
  }
  const Dataset& ra = a.records();
  const Dataset& rb = b.records();
  const size_t fields = ra.schema().num_fields();
  for (size_t t = 0; t < a.size(); ++t) {
    for (size_t f = 0; f < fields; ++f) {
      const Record& rec_a = ra.record(static_cast<TupleId>(t));
      const Record& rec_b = rb.record(static_cast<TupleId>(t));
      if (rec_a.field(f) != rec_b.field(f)) {
        return StringPrintf(
            "record %zu field %zu differs: recovery='%s' replay='%s'", t, f,
            std::string(rec_a.field(f)).c_str(),
            std::string(rec_b.field(f)).c_str());
      }
    }
  }
  const auto pa = a.pairs().ToSortedVector();
  const auto pb = b.pairs().ToSortedVector();
  if (pa != pb) {
    return StringPrintf("pair sets differ: recovery=%zu replay=%zu pairs",
                        pa.size(), pb.size());
  }
  const std::vector<uint32_t> la = a.ComponentLabels();
  const std::vector<uint32_t> lb = b.ComponentLabels();
  for (size_t t = 0; t < la.size(); ++t) {
    if (la[t] != lb[t]) {
      return StringPrintf(
          "closure labels differ at tuple %zu: recovery=%u replay=%u", t,
          la[t], lb[t]);
    }
  }
  return std::string();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) return UsageError(args.status().message());
  for (const std::string& name : args.Names()) {
    bool known = false;
    for (const char* flag : kKnownFlags) {
      if (name == flag) {
        known = true;
        break;
      }
    }
    if (!known) return UsageError("unknown flag --" + name);
  }
  if (!args.Has("data-dir")) return UsageError("--data-dir is required");
  const std::string data_dir = args.GetString("data-dir", "");
  if (data_dir.empty()) return UsageError("--data-dir needs a path");

  MergePurgeOptions options;
  Result<std::vector<KeySpec>> keys = ResolveKeys(
      args.GetString("keys", "last-name,first-name,address"));
  if (!keys.ok()) return UsageError(keys.status().message());
  options.keys = std::move(*keys);
  const int64_t window = args.GetInt("window", 10);
  if (window < 2) {
    return UsageError("--window must be >= 2 (got " +
                      args.GetString("window", "") + ")");
  }
  options.window = static_cast<size_t>(window);

  std::unique_ptr<EquationalTheory> theory;
  if (args.Has("rules")) {
    std::string path = args.GetString("rules", "");
    std::ifstream in(path, std::ios::binary);
    if (!in) return Fail("cannot open rules file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    Result<RuleProgram> program =
        RuleProgram::Compile(text.str(), employee::MakeSchema());
    if (!program.ok()) return Fail(path + ": " + program.status().ToString());
    theory = std::make_unique<RuleProgram>(std::move(*program));
  } else {
    theory = std::make_unique<EmployeeTheory>();
  }

  // The full WAL, read once; both paths replay slices of it. Reading for
  // recovery may truncate a torn tail in place — the same cut the server
  // would make, so the audit sees exactly what a restart would.
  WalReadStats stats;
  Result<std::vector<WalBatch>> wal = ReadWalForRecovery(data_dir, 0, &stats);
  if (!wal.ok()) return Fail("reading WAL: " + wal.status().ToString());

  const uint64_t digest = EngineConfigDigest(options);

  // --- Path A: snapshot + tail, the server's startup sequence. ---
  IncrementalMergePurge recovery(options);
  uint64_t snapshot_seq = 0;
  Result<SnapshotState> snapshot = LoadNewestSnapshot(data_dir, digest);
  if (snapshot.ok()) {
    snapshot_seq = snapshot->seq;
    Status restored = recovery.Restore(std::move(snapshot->records),
                                       std::move(snapshot->pairs));
    if (!restored.ok()) {
      return Fail("restoring snapshot: " + restored.ToString());
    }
  } else if (snapshot.status().code() != StatusCode::kNotFound) {
    return Fail("loading snapshot: " + snapshot.status().ToString());
  }
  Status replayed = Replay(*wal, snapshot_seq, *theory, &recovery);
  if (!replayed.ok()) return Fail("tail replay: " + replayed.ToString());

  // --- Path B: serial replay of the whole log from sequence 1. ---
  if (!wal->empty() && wal->front().seq != 1) {
    return Fail(StringPrintf(
        "WAL starts at seq %llu, not 1 — it was truncated by a snapshot; "
        "rerun the server with --keep-wal to audit recovery",
        static_cast<unsigned long long>(wal->front().seq)));
  }
  if (wal->empty() && snapshot_seq > 0) {
    return Fail(
        "WAL is empty but a snapshot exists — the log was truncated; "
        "rerun the server with --keep-wal to audit recovery");
  }
  IncrementalMergePurge replay(options);
  Status full = Replay(*wal, 0, *theory, &replay);
  if (!full.ok()) return Fail("full replay: " + full.ToString());

  const std::string difference = FirstDifference(recovery, replay);
  if (!difference.empty()) {
    return Fail("recovery diverges from serial replay: " + difference);
  }
  std::fprintf(
      stderr,
      "mergepurge_walcheck: OK — snapshot seq %llu + %llu tail batches "
      "== serial replay of %llu batches (%zu records, %zu entities, "
      "%llu torn bytes cut)\n",
      static_cast<unsigned long long>(snapshot_seq),
      static_cast<unsigned long long>(
          stats.last_seq > snapshot_seq ? stats.last_seq - snapshot_seq : 0),
      static_cast<unsigned long long>(stats.batches_read),
      replay.size(), replay.NumEntities(),
      static_cast<unsigned long long>(stats.truncated_bytes));
  return 0;
}
