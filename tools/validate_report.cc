// validate_report — asserts a JSON document contains required key paths.
//
//   validate_report --file=report.json counters/snm.comparisons \
//                   counters/closure.unions passes
//
// Each positional argument is a '/'-separated path of object keys; the
// tool exits 0 iff the file parses as JSON and every path resolves.
// Used by tools/ci.sh to validate the CLI's --metrics-out and
// --trace-out documents end to end.
//
// Exit codes: 0 all paths present, 1 parse failure or missing path,
// 2 usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr const char* kUsage =
    "usage: validate_report --file=doc.json key/path [key/path...]";

// Walks `path` ("a/b/c") through nested objects from `root`.
bool ResolvePath(const JsonValue& root, const std::string& path) {
  const JsonValue* node = &root;
  for (std::string_view key : SplitView(path, '/')) {
    if (!node->is_object()) return false;
    const JsonValue* child = node->Find(key);
    if (child == nullptr) return false;
    node = child;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--file=", 0) == 0) {
      file = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "validate_report: unknown flag %s\n%s\n",
                   arg.c_str(), kUsage);
      return 2;
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (file.empty() || paths.empty()) {
    std::fprintf(stderr, "validate_report: need --file= and >= 1 path\n%s\n",
                 kUsage);
    return 2;
  }

  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "validate_report: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<JsonValue> doc = JsonValue::Parse(text.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "validate_report: %s: %s\n", file.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }

  int missing = 0;
  for (const std::string& path : paths) {
    if (!ResolvePath(*doc, path)) {
      std::fprintf(stderr, "validate_report: %s: missing %s\n",
                   file.c_str(), path.c_str());
      ++missing;
    }
  }
  if (missing > 0) return 1;
  std::printf("validate_report: %s: %zu paths present\n", file.c_str(),
              paths.size());
  return 0;
}
