// validate_report — asserts a JSON document contains required key paths.
//
//   validate_report --file=report.json counters/snm.comparisons \
//                   counters/closure.unions passes \
//                   window:object uptime_seconds:number state:string
//
// Each positional argument is a '/'-separated path of object keys,
// optionally suffixed with ':type' (object, array, string, number, bool)
// to also assert the resolved value's JSON kind. The tool exits 0 iff
// the file parses as JSON, every path resolves, and every typed path has
// the asserted kind. Used by tools/ci.sh to validate the CLI's
// --metrics-out / --trace-out documents and the service stats responses
// end to end.
//
// Exit codes: 0 all paths present (and well-typed), 1 parse failure,
// missing path, or type mismatch, 2 usage error.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr const char* kUsage =
    "usage: validate_report --file=doc.json key/path[:type] "
    "[key/path[:type]...]\n"
    "  types: object, array, string, number, bool";

// Walks `path` ("a/b/c") through nested objects from `root`.
const JsonValue* ResolvePath(const JsonValue& root,
                             const std::string& path) {
  const JsonValue* node = &root;
  for (std::string_view key : SplitView(path, '/')) {
    if (!node->is_object()) return nullptr;
    const JsonValue* child = node->Find(key);
    if (child == nullptr) return nullptr;
    node = child;
  }
  return node;
}

// "" always matches; otherwise the value's kind must agree.
bool KindMatches(const JsonValue& value, const std::string& type) {
  if (type.empty()) return true;
  if (type == "object") return value.is_object();
  if (type == "array") return value.is_array();
  if (type == "string") return value.is_string();
  if (type == "number") return value.is_number();
  if (type == "bool") return value.kind() == JsonValue::Kind::kBool;
  return false;
}

bool KnownType(const std::string& type) {
  return type.empty() || type == "object" || type == "array" ||
         type == "string" || type == "number" || type == "bool";
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  std::vector<std::pair<std::string, std::string>> checks;  // path, type
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--file=", 0) == 0) {
      file = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "validate_report: unknown flag %s\n%s\n",
                   arg.c_str(), kUsage);
      return 2;
    } else {
      // Metric names contain dots but never colons, so ':' cleanly
      // separates an optional type suffix from the path.
      std::string type;
      const size_t colon = arg.rfind(':');
      if (colon != std::string::npos) {
        type = arg.substr(colon + 1);
        arg.resize(colon);
      }
      if (!KnownType(type)) {
        std::fprintf(stderr, "validate_report: unknown type '%s'\n%s\n",
                     type.c_str(), kUsage);
        return 2;
      }
      checks.emplace_back(std::move(arg), std::move(type));
    }
  }
  if (file.empty() || checks.empty()) {
    std::fprintf(stderr, "validate_report: need --file= and >= 1 path\n%s\n",
                 kUsage);
    return 2;
  }

  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "validate_report: cannot open %s\n", file.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  Result<JsonValue> doc = JsonValue::Parse(text.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "validate_report: %s: %s\n", file.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }

  int failed = 0;
  for (const auto& [path, type] : checks) {
    const JsonValue* node = ResolvePath(*doc, path);
    if (node == nullptr) {
      std::fprintf(stderr, "validate_report: %s: missing %s\n",
                   file.c_str(), path.c_str());
      ++failed;
    } else if (!KindMatches(*node, type)) {
      std::fprintf(stderr, "validate_report: %s: %s is not %s\n",
                   file.c_str(), path.c_str(), type.c_str());
      ++failed;
    }
  }
  if (failed > 0) return 1;
  std::printf("validate_report: %s: %zu paths present\n", file.c_str(),
              checks.size());
  return 0;
}
